//! The per-rank checkpoint slab: binary encoding and atomic writes.
//!
//! Layout (little endian, following the `louvain-graph::binio`
//! conventions of magic + format version + fixed-width fields):
//!
//! ```text
//! magic    u64  = "LVRSCKPT"
//! version  u32  = CHECKPOINT_VERSION
//! rank     u32
//! ranks    u32
//! flags    u32  (bit 0: force_min_tau)
//! phase    u64  (the next phase the resumed run executes)
//! prev_q   f64
//! final_q  f64
//! total_iterations   u64
//! config_fingerprint u64
//! part_starts  [len u64, len × u64]   ownership table
//! offsets      [len u64, len × u64]   CSR row offsets
//! dests        [len u64, len × u64]   CSR destinations (global ids)
//! weights      [len u64, len × f64]   CSR weights
//! cur_of_orig  [len u64, len × u64]   community of each original vertex
//! stats        fixed-width StatsSnapshot block
//! hash     u64  FNV-1a over every preceding byte
//! ```

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use louvain_comm::{StatsSnapshot, NUM_COMM_STEPS};

use crate::error::ResilError;

const MAGIC: u64 = u64::from_le_bytes(*b"LVRSCKPT");
/// Current checkpoint format version. Version 2 extends the stats
/// block with the rank-health counters (stalls, bursts, corruptions,
/// checksum rejects, watchdog ladder, backoff time, per-step retries).
/// Version 3 appends the per-step blocked-wait nanoseconds, so wait
/// attribution stays cumulative across a crash/restart.
pub const CHECKPOINT_VERSION: u32 = 3;

/// Everything one rank needs to rejoin the phase loop at a phase
/// boundary. `phase` is the next phase to execute; the ET probabilities
/// and delta-refresh baselines are per-phase state re-created at phase
/// start, so a phase-boundary cut needs none of them — the
/// threshold-cycle position is fully determined by `phase` and
/// `force_min_tau`.
#[derive(Debug, Clone, PartialEq)]
pub struct RankCheckpoint {
    pub rank: usize,
    pub ranks: usize,
    pub phase: u64,
    pub force_min_tau: bool,
    pub prev_q: f64,
    pub final_q: f64,
    pub total_iterations: u64,
    pub config_fingerprint: u64,
    /// `VertexPartition::starts()` of the coarse graph.
    pub part_starts: Vec<u64>,
    pub offsets: Vec<u64>,
    pub dests: Vec<u64>,
    pub weights: Vec<f64>,
    /// Community of each original vertex owned by this rank (the
    /// dendrogram-so-far, projected).
    pub cur_of_orig: Vec<u64>,
    /// Comm counters at the cut, so a resumed run reports cumulative
    /// totals.
    pub stats: StatsSnapshot,
}

/// FNV-1a over a byte slice — the content hash of checkpoint files and
/// manifest entries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_u64(buf, v);
    }
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_f64(buf, v);
    }
}

/// Bounded-length binary reader over the encoded buffer.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ResilError> {
        if self.pos + n > self.buf.len() {
            return Err(ResilError::Corrupt(format!(
                "truncated checkpoint: wanted {n} bytes at offset {}, file holds {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, ResilError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ResilError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ResilError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u64s(&mut self) -> Result<Vec<u64>, ResilError> {
        let len = self.u64()? as usize;
        (0..len).map(|_| self.u64()).collect()
    }

    fn f64s(&mut self) -> Result<Vec<f64>, ResilError> {
        let len = self.u64()? as usize;
        (0..len).map(|_| self.f64()).collect()
    }
}

/// Serialize a checkpoint, appending the trailing content hash.
pub fn encode(ckpt: &RankCheckpoint) -> Vec<u8> {
    let mut buf = Vec::with_capacity(
        128 + 8
            * (ckpt.part_starts.len()
                + ckpt.offsets.len()
                + ckpt.dests.len()
                + ckpt.weights.len()
                + ckpt.cur_of_orig.len()),
    );
    put_u64(&mut buf, MAGIC);
    put_u32(&mut buf, CHECKPOINT_VERSION);
    put_u32(&mut buf, ckpt.rank as u32);
    put_u32(&mut buf, ckpt.ranks as u32);
    put_u32(&mut buf, u32::from(ckpt.force_min_tau));
    put_u64(&mut buf, ckpt.phase);
    put_f64(&mut buf, ckpt.prev_q);
    put_f64(&mut buf, ckpt.final_q);
    put_u64(&mut buf, ckpt.total_iterations);
    put_u64(&mut buf, ckpt.config_fingerprint);
    put_u64s(&mut buf, &ckpt.part_starts);
    put_u64s(&mut buf, &ckpt.offsets);
    put_u64s(&mut buf, &ckpt.dests);
    put_f64s(&mut buf, &ckpt.weights);
    put_u64s(&mut buf, &ckpt.cur_of_orig);
    let s = &ckpt.stats;
    put_u64(&mut buf, s.p2p_messages);
    put_u64(&mut buf, s.p2p_bytes);
    put_u64(&mut buf, s.collective_calls);
    put_u64(&mut buf, s.collective_bytes);
    put_f64(&mut buf, s.modeled_seconds);
    put_u64s(&mut buf, &s.step_messages);
    put_u64s(&mut buf, &s.step_bytes);
    put_u64(&mut buf, s.fault_drops);
    put_u64(&mut buf, s.fault_delays);
    put_u64(&mut buf, s.fault_duplicates);
    put_u64(&mut buf, s.fault_truncations);
    put_u64(&mut buf, s.fault_retries);
    put_u64(&mut buf, s.fault_stalls);
    put_u64(&mut buf, s.fault_bursts);
    put_u64(&mut buf, s.fault_corruptions);
    put_u64(&mut buf, s.checksum_rejects);
    put_u64(&mut buf, s.wd_timeouts);
    put_u64(&mut buf, s.wd_retries);
    put_u64(&mut buf, s.wd_stragglers);
    put_u64(&mut buf, s.backoff_nanos);
    put_u64s(&mut buf, &s.step_retries);
    put_u64s(&mut buf, &s.step_wait_nanos);
    let hash = fnv1a64(&buf);
    put_u64(&mut buf, hash);
    buf
}

/// Parse and validate an encoded checkpoint (magic, version, content
/// hash, field shapes).
pub fn decode(bytes: &[u8]) -> Result<RankCheckpoint, ResilError> {
    if bytes.len() < 8 + 8 {
        return Err(ResilError::Corrupt(format!(
            "file of {} bytes cannot hold a checkpoint",
            bytes.len()
        )));
    }
    let (body, hash_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(hash_bytes.try_into().unwrap());
    let actual = fnv1a64(body);
    if stored != actual {
        return Err(ResilError::HashMismatch {
            expected: stored,
            actual,
        });
    }
    let mut c = Cur { buf: body, pos: 0 };
    let magic = c.u64()?;
    if magic != MAGIC {
        return Err(ResilError::Corrupt(format!(
            "bad magic {magic:#018x} (expected {MAGIC:#018x})"
        )));
    }
    let version = c.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(ResilError::UnsupportedVersion {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let rank = c.u32()? as usize;
    let ranks = c.u32()? as usize;
    let flags = c.u32()?;
    let phase = c.u64()?;
    let prev_q = c.f64()?;
    let final_q = c.f64()?;
    let total_iterations = c.u64()?;
    let config_fingerprint = c.u64()?;
    let part_starts = c.u64s()?;
    let offsets = c.u64s()?;
    let dests = c.u64s()?;
    let weights = c.f64s()?;
    let cur_of_orig = c.u64s()?;
    let mut stats = StatsSnapshot {
        p2p_messages: c.u64()?,
        p2p_bytes: c.u64()?,
        collective_calls: c.u64()?,
        collective_bytes: c.u64()?,
        modeled_seconds: c.f64()?,
        ..Default::default()
    };
    let step_messages = c.u64s()?;
    let step_bytes = c.u64s()?;
    if step_messages.len() != NUM_COMM_STEPS || step_bytes.len() != NUM_COMM_STEPS {
        return Err(ResilError::Corrupt(format!(
            "stats block has {}/{} comm steps, this build expects {NUM_COMM_STEPS}",
            step_messages.len(),
            step_bytes.len()
        )));
    }
    stats.step_messages.copy_from_slice(&step_messages);
    stats.step_bytes.copy_from_slice(&step_bytes);
    stats.fault_drops = c.u64()?;
    stats.fault_delays = c.u64()?;
    stats.fault_duplicates = c.u64()?;
    stats.fault_truncations = c.u64()?;
    stats.fault_retries = c.u64()?;
    stats.fault_stalls = c.u64()?;
    stats.fault_bursts = c.u64()?;
    stats.fault_corruptions = c.u64()?;
    stats.checksum_rejects = c.u64()?;
    stats.wd_timeouts = c.u64()?;
    stats.wd_retries = c.u64()?;
    stats.wd_stragglers = c.u64()?;
    stats.backoff_nanos = c.u64()?;
    let step_retries = c.u64s()?;
    if step_retries.len() != NUM_COMM_STEPS {
        return Err(ResilError::Corrupt(format!(
            "stats block has {} retry steps, this build expects {NUM_COMM_STEPS}",
            step_retries.len()
        )));
    }
    stats.step_retries.copy_from_slice(&step_retries);
    let step_wait_nanos = c.u64s()?;
    if step_wait_nanos.len() != NUM_COMM_STEPS {
        return Err(ResilError::Corrupt(format!(
            "stats block has {} wait steps, this build expects {NUM_COMM_STEPS}",
            step_wait_nanos.len()
        )));
    }
    stats.step_wait_nanos.copy_from_slice(&step_wait_nanos);
    if c.pos != body.len() {
        return Err(ResilError::Corrupt(format!(
            "{} trailing bytes after the stats block",
            body.len() - c.pos
        )));
    }
    if dests.len() != weights.len() {
        return Err(ResilError::Corrupt(
            "dests/weights length mismatch".to_string(),
        ));
    }
    Ok(RankCheckpoint {
        rank,
        ranks,
        phase,
        force_min_tau: flags & 1 != 0,
        prev_q,
        final_q,
        total_iterations,
        config_fingerprint,
        part_starts,
        offsets,
        dests,
        weights,
        cur_of_orig,
        stats,
    })
}

/// Write `bytes` to `path` atomically: a sibling tmp file is written,
/// fsynced, then renamed over the target, so a crash mid-write never
/// leaves a half-written checkpoint under the final name.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("checkpoint path {} has no parent", path.display()),
        )
    })?;
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("checkpoint");
    let tmp = dir.join(format!(".{file_name}.tmp"));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RankCheckpoint {
        RankCheckpoint {
            rank: 1,
            ranks: 4,
            phase: 3,
            force_min_tau: true,
            prev_q: f64::NEG_INFINITY,
            final_q: 0.4312,
            total_iterations: 17,
            config_fingerprint: 0xDEAD_BEEF_0123_4567,
            part_starts: vec![0, 10, 20, 30],
            offsets: vec![0, 2, 5],
            dests: vec![11, 12, 13, 14, 15],
            weights: vec![1.0, 0.5, 2.0, 0.25, 3.0],
            cur_of_orig: vec![7, 7, 9],
            stats: StatsSnapshot {
                p2p_messages: 5,
                p2p_bytes: 120,
                collective_calls: 3,
                collective_bytes: 24,
                modeled_seconds: 0.125,
                step_wait_nanos: [7, 0, 11, 0, 0, 3],
                ..Default::default()
            },
        }
    }

    #[test]
    fn roundtrip_including_neg_infinity() {
        let ckpt = sample();
        let bytes = encode(&ckpt);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert!(back.prev_q == f64::NEG_INFINITY);
        // StatsSnapshot's PartialEq deliberately ignores the wall-clock
        // wait array, so pin its roundtrip explicitly.
        assert_eq!(back.stats.step_wait_nanos, ckpt.stats.step_wait_nanos);
    }

    #[test]
    fn flipped_byte_fails_the_hash() {
        let mut bytes = encode(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match decode(&bytes) {
            Err(ResilError::HashMismatch { .. }) => {}
            other => panic!("expected HashMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode(&sample());
        assert!(decode(&bytes[..bytes.len() - 9]).is_err());
        assert!(decode(&bytes[..4]).is_err());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] ^= 0xFF;
        // Re-seal the hash so the magic check (not the hash) fires.
        let n = bytes.len();
        let h = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&h.to_le_bytes());
        match decode(&bytes) {
            Err(ResilError::Corrupt(msg)) => assert!(msg.contains("bad magic"), "{msg}"),
            other => panic!("expected Corrupt(bad magic), got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode(&sample());
        bytes[8] = 99;
        let n = bytes.len();
        let h = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&h.to_le_bytes());
        match decode(&bytes) {
            Err(ResilError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn atomic_write_roundtrips_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("louvain-resil-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rank-0.ckpt");
        let bytes = encode(&sample());
        write_atomic(&path, &bytes).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        assert!(
            std::fs::read_dir(&dir).unwrap().all(|e| !e
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".tmp")),
            "tmp file must be renamed away"
        );
    }
}
