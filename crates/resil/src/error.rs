//! Typed failure modes of checkpoint writing, loading, and validation.

use std::fmt;

/// Everything that can go wrong between a checkpoint directory and a
/// restored rank state.
#[derive(Debug)]
pub enum ResilError {
    Io(std::io::Error),
    /// Structural damage: bad magic, truncated buffer, malformed field.
    Corrupt(String),
    /// The format version is not one this build reads.
    UnsupportedVersion {
        found: u32,
        expected: u32,
    },
    /// The FNV-1a content hash does not match the stored bytes.
    HashMismatch {
        expected: u64,
        actual: u64,
    },
    /// The checkpoint was written under a different `DistConfig`.
    ConfigMismatch {
        expected: u64,
        actual: u64,
    },
    /// The checkpoint was written by a job with a different rank count.
    RankCountMismatch {
        expected: usize,
        actual: usize,
    },
    /// The manifest is missing, malformed, or inconsistent.
    Manifest(String),
}

impl fmt::Display for ResilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            ResilError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            ResilError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {expected})"
            ),
            ResilError::HashMismatch { expected, actual } => write!(
                f,
                "checkpoint content hash mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            ResilError::ConfigMismatch { expected, actual } => write!(
                f,
                "checkpoint was written under a different configuration (fingerprint {actual:#018x}, this run {expected:#018x})"
            ),
            ResilError::RankCountMismatch { expected, actual } => write!(
                f,
                "checkpoint was written by a {actual}-rank job, cannot resume with {expected} ranks"
            ),
            ResilError::Manifest(msg) => write!(f, "checkpoint manifest error: {msg}"),
        }
    }
}

impl std::error::Error for ResilError {}

impl From<std::io::Error> for ResilError {
    fn from(e: std::io::Error) -> Self {
        ResilError::Io(e)
    }
}
