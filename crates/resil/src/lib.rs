//! # louvain-resil — checkpoint/restart for distributed Louvain
//!
//! Phase boundaries of the distributed Louvain algorithm are natural
//! consistent cuts: all four per-iteration communication steps have
//! quiesced, the coarse graph has just been rebuilt, and every rank's
//! state is fully described by its local CSR slab, its projection of the
//! original vertices onto current communities (the dendrogram-so-far),
//! and a few phase-loop scalars. This crate persists exactly that state:
//!
//! * [`RankCheckpoint`] — one rank's slab in a versioned little-endian
//!   binary format (magic + format version + trailing FNV-1a content
//!   hash), written atomically (tmp file + fsync + rename);
//! * [`Manifest`] — a per-phase JSON manifest recording rank count,
//!   `DistConfig` fingerprint, and per-rank file checksums, committed
//!   atomically after every rank's slab is durable, plus a `LATEST`
//!   pointer naming the newest complete phase;
//! * [`CheckpointStore`] — the directory layout
//!   (`<dir>/phase-<k>/rank-<r>.ckpt`) and the validated load path.
//!
//! Loading validates magic, version, content hash, manifest checksum,
//! rank count, and config fingerprint, and reports failures as typed
//! [`ResilError`]s so callers can distinguish "no checkpoint" from
//! "corrupt checkpoint" from "checkpoint from a different run".

mod checkpoint;
mod error;
mod manifest;

pub use checkpoint::{decode, encode, fnv1a64, RankCheckpoint, CHECKPOINT_VERSION};
pub use error::ResilError;
pub use manifest::{CheckpointStore, Manifest, ManifestEntry};
