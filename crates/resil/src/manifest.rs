//! Per-phase manifests and the on-disk checkpoint store.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/phase-<k>/rank-<r>.ckpt   one slab per rank
//! <dir>/phase-<k>/MANIFEST.json   written after every slab is durable
//! <dir>/LATEST                    newest phase with a complete manifest
//! ```
//!
//! Every file is written atomically (tmp + fsync + rename), and the
//! manifest is only committed after all rank slabs of the phase exist —
//! so `LATEST` always names a phase that can actually be restored, no
//! matter where a crash lands.

use std::path::{Path, PathBuf};

use louvain_obs::Json;

use crate::checkpoint::{decode, encode, fnv1a64, write_atomic, RankCheckpoint};
use crate::error::ResilError;

/// Manifest schema version.
const MANIFEST_VERSION: u64 = 1;

/// One rank's entry in a phase manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub rank: usize,
    pub file: String,
    pub bytes: u64,
    /// FNV-1a over the whole checkpoint file.
    pub hash: u64,
}

/// The record committed once a phase's checkpoints are all durable.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    pub phase: u64,
    pub ranks: usize,
    pub config_fingerprint: u64,
    pub files: Vec<ManifestEntry>,
}

fn hex(v: u64) -> String {
    format!("{v:#018x}")
}

fn parse_hex(s: &str) -> Result<u64, ResilError> {
    s.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| ResilError::Manifest(format!("bad hex value {s:?}")))
}

fn field<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, ResilError> {
    doc.get(key)
        .ok_or_else(|| ResilError::Manifest(format!("missing field {key:?}")))
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, ResilError> {
    field(doc, key)?
        .as_u64()
        .ok_or_else(|| ResilError::Manifest(format!("field {key:?} is not an integer")))
}

impl Manifest {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), Json::Num(MANIFEST_VERSION as f64)),
            ("phase".into(), Json::Num(self.phase as f64)),
            ("ranks".into(), Json::Num(self.ranks as f64)),
            (
                "config_fingerprint".into(),
                Json::str(hex(self.config_fingerprint)),
            ),
            (
                "files".into(),
                Json::Arr(
                    self.files
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("rank".into(), Json::Num(e.rank as f64)),
                                ("file".into(), Json::str(e.file.clone())),
                                ("bytes".into(), Json::Num(e.bytes as f64)),
                                ("hash".into(), Json::str(hex(e.hash))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(doc: &Json) -> Result<Manifest, ResilError> {
        let version = field_u64(doc, "version")?;
        if version != MANIFEST_VERSION {
            return Err(ResilError::Manifest(format!(
                "manifest version {version} unsupported (expected {MANIFEST_VERSION})"
            )));
        }
        let files = field(doc, "files")?
            .as_arr()
            .ok_or_else(|| ResilError::Manifest("files is not an array".into()))?
            .iter()
            .map(|f| {
                Ok(ManifestEntry {
                    rank: field_u64(f, "rank")? as usize,
                    file: field(f, "file")?
                        .as_str()
                        .ok_or_else(|| ResilError::Manifest("file is not a string".into()))?
                        .to_string(),
                    bytes: field_u64(f, "bytes")?,
                    hash: parse_hex(
                        field(f, "hash")?
                            .as_str()
                            .ok_or_else(|| ResilError::Manifest("hash is not a string".into()))?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>, ResilError>>()?;
        Ok(Manifest {
            phase: field_u64(doc, "phase")?,
            ranks: field_u64(doc, "ranks")? as usize,
            config_fingerprint: parse_hex(
                field(doc, "config_fingerprint")?
                    .as_str()
                    .ok_or_else(|| ResilError::Manifest("fingerprint is not a string".into()))?,
            )?,
            files,
        })
    }

    /// Check that this manifest belongs to the job trying to resume.
    pub fn validate(&self, ranks: usize, config_fingerprint: u64) -> Result<(), ResilError> {
        if self.ranks != ranks {
            return Err(ResilError::RankCountMismatch {
                expected: ranks,
                actual: self.ranks,
            });
        }
        if self.config_fingerprint != config_fingerprint {
            return Err(ResilError::ConfigMismatch {
                expected: config_fingerprint,
                actual: self.config_fingerprint,
            });
        }
        if self.files.len() != self.ranks {
            return Err(ResilError::Manifest(format!(
                "manifest lists {} files for {} ranks",
                self.files.len(),
                self.ranks
            )));
        }
        Ok(())
    }
}

/// The checkpoint directory: path layout, atomic commits, validated loads.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<CheckpointStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn phase_dir(&self, phase: u64) -> PathBuf {
        self.dir.join(format!("phase-{phase}"))
    }

    fn rank_file(phase_dir: &Path, rank: usize) -> PathBuf {
        phase_dir.join(format!("rank-{rank}.ckpt"))
    }

    /// Serialize and atomically write one rank's slab for its phase.
    /// Returns the manifest entry to gather at the manifest writer.
    pub fn write_rank(&self, ckpt: &RankCheckpoint) -> std::io::Result<ManifestEntry> {
        let phase_dir = self.phase_dir(ckpt.phase);
        std::fs::create_dir_all(&phase_dir)?;
        let bytes = encode(ckpt);
        let path = Self::rank_file(&phase_dir, ckpt.rank);
        write_atomic(&path, &bytes)?;
        Ok(ManifestEntry {
            rank: ckpt.rank,
            file: path.file_name().unwrap().to_string_lossy().into_owned(),
            bytes: bytes.len() as u64,
            hash: fnv1a64(&bytes),
        })
    }

    /// Commit a phase: write its manifest (atomically), then advance the
    /// `LATEST` pointer. Call only after every rank's `write_rank`
    /// returned — the caller's gather/barrier provides that ordering.
    pub fn commit_phase(
        &self,
        phase: u64,
        ranks: usize,
        config_fingerprint: u64,
        mut files: Vec<ManifestEntry>,
    ) -> std::io::Result<()> {
        files.sort_by_key(|e| e.rank);
        let manifest = Manifest {
            phase,
            ranks,
            config_fingerprint,
            files,
        };
        let text = manifest.to_json().to_string_pretty();
        write_atomic(
            &self.phase_dir(phase).join("MANIFEST.json"),
            text.as_bytes(),
        )?;
        write_atomic(&self.dir.join("LATEST"), format!("{phase}\n").as_bytes())
    }

    /// The newest phase with a committed manifest, or `None` when the
    /// store has no complete checkpoint yet.
    pub fn latest(&self) -> Result<Option<u64>, ResilError> {
        let path = self.dir.join("LATEST");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        text.trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| ResilError::Manifest(format!("LATEST holds {:?}", text.trim())))
    }

    /// Resume-latest helper: the parsed manifest of the newest committed
    /// phase, or `None` when the store holds no complete checkpoint yet.
    pub fn latest_manifest(&self) -> Result<Option<Manifest>, ResilError> {
        match self.latest()? {
            Some(phase) => self.manifest(phase).map(Some),
            None => Ok(None),
        }
    }

    /// Retention: remove every `phase-<k>` directory superseded by the
    /// newest committed phase, keeping that phase's slabs + manifest and
    /// the `LATEST` pointer (so a later resume still works). Returns the
    /// number of phase directories pruned. A store with no committed
    /// checkpoint is left untouched — half-written phase directories may
    /// be one commit away from becoming the newest.
    pub fn prune_superseded(&self) -> Result<usize, ResilError> {
        let Some(latest) = self.latest()? else {
            return Ok(0);
        };
        let mut pruned = 0usize;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(phase) = name
                .to_str()
                .and_then(|n| n.strip_prefix("phase-"))
                .and_then(|k| k.parse::<u64>().ok())
            else {
                continue;
            };
            if phase < latest {
                std::fs::remove_dir_all(entry.path())?;
                pruned += 1;
            }
        }
        Ok(pruned)
    }

    /// Load and parse the manifest of one phase.
    pub fn manifest(&self, phase: u64) -> Result<Manifest, ResilError> {
        let path = self.phase_dir(phase).join("MANIFEST.json");
        let text = std::fs::read_to_string(&path)?;
        let doc = Json::parse(&text)
            .map_err(|e| ResilError::Manifest(format!("{}: {e:?}", path.display())))?;
        let manifest = Manifest::from_json(&doc)?;
        if manifest.phase != phase {
            return Err(ResilError::Manifest(format!(
                "manifest in phase-{phase}/ claims phase {}",
                manifest.phase
            )));
        }
        Ok(manifest)
    }

    /// Load one rank's slab, checking the manifest checksum, the
    /// embedded content hash, and that the slab belongs to `rank`.
    pub fn load_rank(
        &self,
        manifest: &Manifest,
        rank: usize,
    ) -> Result<RankCheckpoint, ResilError> {
        let entry = manifest
            .files
            .iter()
            .find(|e| e.rank == rank)
            .ok_or_else(|| ResilError::Manifest(format!("no manifest entry for rank {rank}")))?;
        let path = self.phase_dir(manifest.phase).join(&entry.file);
        let bytes = std::fs::read(&path)?;
        if bytes.len() as u64 != entry.bytes {
            return Err(ResilError::Corrupt(format!(
                "{}: {} bytes on disk, manifest records {}",
                path.display(),
                bytes.len(),
                entry.bytes
            )));
        }
        let actual = fnv1a64(&bytes);
        if actual != entry.hash {
            return Err(ResilError::HashMismatch {
                expected: entry.hash,
                actual,
            });
        }
        let ckpt = decode(&bytes)?;
        if ckpt.rank != rank || ckpt.phase != manifest.phase {
            return Err(ResilError::Corrupt(format!(
                "{} holds rank {} phase {} (expected rank {rank} phase {})",
                path.display(),
                ckpt.rank,
                ckpt.phase,
                manifest.phase
            )));
        }
        Ok(ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_comm::StatsSnapshot;

    fn tmp_store(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir()
            .join("louvain-resil-store-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    fn ckpt(rank: usize, phase: u64) -> RankCheckpoint {
        RankCheckpoint {
            rank,
            ranks: 2,
            phase,
            force_min_tau: false,
            prev_q: 0.25,
            final_q: 0.25,
            total_iterations: 4,
            config_fingerprint: 0xABCD,
            part_starts: vec![0, 3, 6],
            offsets: vec![0, 1, 2, 3],
            dests: vec![1, 2, 3],
            weights: vec![1.0, 1.0, 1.0],
            cur_of_orig: vec![0, 0, 1],
            stats: StatsSnapshot::default(),
        }
    }

    fn commit(store: &CheckpointStore, phase: u64) {
        let entries: Vec<_> = (0..2)
            .map(|r| store.write_rank(&ckpt(r, phase)).unwrap())
            .collect();
        store.commit_phase(phase, 2, 0xABCD, entries).unwrap();
    }

    #[test]
    fn store_roundtrip_with_latest_pointer() {
        let store = tmp_store("roundtrip");
        assert_eq!(store.latest().unwrap(), None);
        commit(&store, 1);
        commit(&store, 2);
        assert_eq!(store.latest().unwrap(), Some(2));
        let manifest = store.manifest(2).unwrap();
        manifest.validate(2, 0xABCD).unwrap();
        for r in 0..2 {
            let back = store.load_rank(&manifest, r).unwrap();
            assert_eq!(back, ckpt(r, 2));
        }
    }

    #[test]
    fn validation_rejects_wrong_job() {
        let store = tmp_store("validate");
        commit(&store, 1);
        let manifest = store.manifest(1).unwrap();
        assert!(matches!(
            manifest.validate(3, 0xABCD),
            Err(ResilError::RankCountMismatch { .. })
        ));
        assert!(matches!(
            manifest.validate(2, 0x1234),
            Err(ResilError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_rank_file_is_caught_by_manifest_hash() {
        let store = tmp_store("corrupt");
        commit(&store, 1);
        let path = store.phase_dir(1).join("rank-0.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let manifest = store.manifest(1).unwrap();
        assert!(matches!(
            store.load_rank(&manifest, 0),
            Err(ResilError::HashMismatch { .. })
        ));
    }

    #[test]
    fn missing_manifest_reads_as_error_not_panic() {
        let store = tmp_store("missing");
        assert!(matches!(store.manifest(7), Err(ResilError::Io(_))));
    }

    #[test]
    fn latest_manifest_resolves_newest_committed_phase() {
        let store = tmp_store("latest-manifest");
        assert!(store.latest_manifest().unwrap().is_none());
        commit(&store, 1);
        commit(&store, 3);
        let m = store.latest_manifest().unwrap().unwrap();
        assert_eq!(m.phase, 3);
        m.validate(2, 0xABCD).unwrap();
    }

    #[test]
    fn prune_superseded_keeps_latest_restorable() {
        let store = tmp_store("prune");
        // Nothing committed yet: nothing pruned, even with a stray
        // half-written phase dir on disk.
        let _ = store.write_rank(&ckpt(0, 1)).unwrap();
        assert_eq!(store.prune_superseded().unwrap(), 0);
        assert!(store.phase_dir(1).exists());

        commit(&store, 1);
        commit(&store, 2);
        commit(&store, 4);
        assert_eq!(store.prune_superseded().unwrap(), 2);
        assert!(!store.phase_dir(1).exists());
        assert!(!store.phase_dir(2).exists());
        // The survivor still restores end to end.
        assert_eq!(store.latest().unwrap(), Some(4));
        let m = store.latest_manifest().unwrap().unwrap();
        for r in 0..2 {
            assert_eq!(store.load_rank(&m, r).unwrap(), ckpt(r, 4));
        }
        // Idempotent.
        assert_eq!(store.prune_superseded().unwrap(), 0);
    }
}
