//! A bounded, lock-free, multi-producer event ring (Vyukov-style bounded
//! queue, write-only during a run, drained once at job end).
//!
//! Each rank owns one ring; the rank thread is the usual producer, but
//! the protocol tolerates concurrent producers (e.g. helper threads)
//! without locks. When the ring is full, new events are counted as
//! dropped rather than blocking or reallocating — tracing must never
//! perturb the hot path it observes.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::TraceEvent;

struct Slot {
    /// Sequence protocol: `seq == index` means free, `seq == index + 1`
    /// means the value at this slot is fully written.
    seq: AtomicUsize,
    value: UnsafeCell<Option<TraceEvent>>,
}

pub struct EventRing {
    mask: usize,
    slots: Box<[Slot]>,
    /// Next claim position; never exceeds capacity (full rings drop).
    head: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slot values are only written by the producer that won the
// `head` CAS for that position, and only read by `drain(&mut self)`
// (exclusive access); the `seq` acquire/release pair orders the writes.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("len", &self.head.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl EventRing {
    /// Create a ring holding up to `capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            mask: cap - 1,
            slots,
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded so far (successful pushes).
    pub fn len(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record one event. Returns false (and counts a drop) if full.
    pub fn push(&self, ev: TraceEvent) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS gives this thread sole
                        // write access to the slot until seq is bumped.
                        unsafe { *slot.value.get() = Some(ev) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < pos {
                // The slot one lap behind is still occupied: ring full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Take all recorded events in claim order. Exclusive access (`&mut`)
    /// guarantees no concurrent producers remain.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        let n = self.len().min(self.slots.len());
        let mut out = Vec::with_capacity(n);
        for pos in 0..n {
            let slot = &mut self.slots[pos & self.mask];
            debug_assert_eq!(
                slot.seq.load(Ordering::Acquire),
                pos + 1,
                "unfinished slot write"
            );
            if let Some(ev) = slot.value.get_mut().take() {
                out.push(ev);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            name: "e",
            cat: "t",
            kind: EventKind::Instant,
            ts_ns: ts,
            tid: 0,
            modeled_seconds: 0.0,
            attempt: 0,
            args: vec![],
        }
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let mut r = EventRing::with_capacity(16);
        for i in 0..10 {
            assert!(r.push(ev(i)));
        }
        let out = r.drain();
        assert_eq!(out.len(), 10);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
        }
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_new_events_and_counts_them() {
        let mut r = EventRing::with_capacity(8);
        for i in 0..8 {
            assert!(r.push(ev(i)));
        }
        assert!(!r.push(ev(99)));
        assert!(!r.push(ev(100)));
        assert_eq!(r.dropped(), 2);
        let out = r.drain();
        assert_eq!(out.len(), 8);
        // The earliest events are the ones kept.
        assert_eq!(out[0].ts_ns, 0);
        assert_eq!(out[7].ts_ns, 7);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 8);
        assert_eq!(EventRing::with_capacity(9).capacity(), 16);
        assert_eq!(EventRing::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn concurrent_producers_never_lose_claimed_events() {
        let ring = std::sync::Arc::new(EventRing::with_capacity(1 << 12));
        let threads = 4;
        let per_thread = 2_000u64; // 8000 pushes > 4096 slots: some drop
        let mut handles = Vec::new();
        for t in 0..threads {
            let ring = std::sync::Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..per_thread {
                    if ring.push(ev(t as u64 * per_thread + i)) {
                        pushed += 1;
                    }
                }
                pushed
            }));
        }
        let pushed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut ring = std::sync::Arc::try_unwrap(ring).expect("sole owner");
        let drained = ring.drain();
        assert_eq!(drained.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), threads as u64 * per_thread);
        assert_eq!(pushed, ring.capacity() as u64);
        // No duplicates.
        let mut ids: Vec<u64> = drained.iter().map(|e| e.ts_ns).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), drained.len());
    }
}
