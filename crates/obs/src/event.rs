//! Trace event model.
//!
//! Events are recorded complete (begin + duration in one record, Chrome's
//! `"ph": "X"`) rather than as begin/end pairs: pairing is guaranteed by
//! the RAII span guard, and one record per span halves ring traffic.

/// A typed span/event argument value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(&'static str),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<i32> for ArgValue {
    fn from(v: i32) -> Self {
        ArgValue::I64(v as i64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

/// What kind of record this is (mapped to Chrome's `ph` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `ts` is the start, `dur_ns` the length (`"X"`).
    Complete { dur_ns: u64 },
    /// A point-in-time marker (`"i"`).
    Instant,
}

/// One recorded event. Timestamps are nanoseconds since the collector's
/// epoch (one shared `Instant` per job, so ranks share a timeline).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Category ("dist", "comm", "grappolo", …) — Chrome's `cat` field.
    pub cat: &'static str,
    pub kind: EventKind,
    pub ts_ns: u64,
    /// Thread that recorded the event (process-wide small integer).
    pub tid: u32,
    /// Modeled (α-β / work-counter) seconds elapsed inside the span,
    /// recorded side by side with the wall-clock duration.
    pub modeled_seconds: f64,
    /// Which execution attempt of the rank recorded this event: 0 for
    /// the first, incremented on each crash/hang recovery so pre-crash
    /// events stay distinguishable from the resumed attempt's.
    pub attempt: u32,
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Wall-clock duration in nanoseconds (0 for instant events).
    pub fn dur_ns(&self) -> u64 {
        match self.kind {
            EventKind::Complete { dur_ns } => dur_ns,
            EventKind::Instant => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_conversions() {
        assert_eq!(ArgValue::from(3u64), ArgValue::U64(3));
        assert_eq!(ArgValue::from(3usize), ArgValue::U64(3));
        assert_eq!(ArgValue::from(-3i64), ArgValue::I64(-3));
        assert_eq!(ArgValue::from(0.5f64), ArgValue::F64(0.5));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
        assert_eq!(ArgValue::from("x"), ArgValue::Str("x"));
    }

    #[test]
    fn dur_is_zero_for_instants() {
        let e = TraceEvent {
            name: "x",
            cat: "t",
            kind: EventKind::Instant,
            ts_ns: 5,
            tid: 0,
            modeled_seconds: 0.0,
            attempt: 0,
            args: vec![],
        };
        assert_eq!(e.dur_ns(), 0);
        let e = TraceEvent {
            kind: EventKind::Complete { dur_ns: 7 },
            ..e
        };
        assert_eq!(e.dur_ns(), 7);
    }
}
