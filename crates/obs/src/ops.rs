//! Daemon operational events: typed event log, bounded JSONL rotation,
//! and the crash flight recorder.
//!
//! Tracing and telemetry answer "what did the algorithm do"; the ops
//! plane answers "what did the *daemon* do": which jobs were admitted
//! or shed, when phases completed, when a drain began. Events carry a
//! monotonic sequence number and a wall-clock timestamp, flow through
//! one [`OpsPlane`] per daemon, and land in up to three places:
//!
//! 1. a fixed-size in-memory ring (always on — this is the flight
//!    recorder's source),
//! 2. an optional size-rotated JSONL file (`--event-log`), flushed per
//!    event so a `kill -9` loses at most the event being written,
//! 3. watchers reading [`OpsPlane::events`] (the `dump` verb, tests).
//!
//! The flight recorder dumps the ring plus a metrics snapshot to
//! `flight-<unix_ms>.json` via write-temp/fsync/rename, so a dump is
//! either absent or complete — never torn. Because the JSONL log is
//! flushed per line, the dump's `last_seq` equals the sequence number
//! of the event-log tail whenever both are enabled, which is exactly
//! the consistency check the serve smoke test pins.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::report::metrics_to_json;

/// Magic tag of a flight-recorder dump document.
pub const FLIGHT_MAGIC: &str = "LVFR";
/// Flight-dump format version.
pub const FLIGHT_VERSION: u32 = 1;
/// Default flight-recorder ring capacity (events).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Every kind of operational event the daemon emits. The snake_case
/// wire names double as the `lens tail --kind` filter vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    JobAccepted,
    JobShed,
    JobStarted,
    PhaseCompleted,
    JobResumed,
    JobQuarantined,
    JobCancelled,
    JobFailed,
    JobDone,
    CheckpointGc,
    DrainBegin,
    DrainEnd,
    FlightDump,
}

impl OpKind {
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::JobAccepted => "job_accepted",
            OpKind::JobShed => "job_shed",
            OpKind::JobStarted => "job_started",
            OpKind::PhaseCompleted => "phase_completed",
            OpKind::JobResumed => "job_resumed",
            OpKind::JobQuarantined => "job_quarantined",
            OpKind::JobCancelled => "job_cancelled",
            OpKind::JobFailed => "job_failed",
            OpKind::JobDone => "job_done",
            OpKind::CheckpointGc => "checkpoint_gc",
            OpKind::DrainBegin => "drain_begin",
            OpKind::DrainEnd => "drain_end",
            OpKind::FlightDump => "flight_dump",
        }
    }

    pub fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "job_accepted" => OpKind::JobAccepted,
            "job_shed" => OpKind::JobShed,
            "job_started" => OpKind::JobStarted,
            "phase_completed" => OpKind::PhaseCompleted,
            "job_resumed" => OpKind::JobResumed,
            "job_quarantined" => OpKind::JobQuarantined,
            "job_cancelled" => OpKind::JobCancelled,
            "job_failed" => OpKind::JobFailed,
            "job_done" => OpKind::JobDone,
            "checkpoint_gc" => OpKind::CheckpointGc,
            "drain_begin" => OpKind::DrainBegin,
            "drain_end" => OpKind::DrainEnd,
            "flight_dump" => OpKind::FlightDump,
            _ => return None,
        })
    }
}

/// One typed daemon event.
#[derive(Debug, Clone, PartialEq)]
pub struct OpEvent {
    /// Monotonic per-daemon sequence number, starting at 1.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    pub kind: OpKind,
    /// Job this event concerns, when it concerns one.
    pub job: Option<String>,
    /// Kind-specific payload (phase index, shed reason, ...).
    pub fields: Vec<(String, Json)>,
}

impl OpEvent {
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("unix_ms".to_string(), Json::Num(self.unix_ms as f64)),
            ("kind".to_string(), Json::str(self.kind.as_str())),
        ];
        if let Some(job) = &self.job {
            members.push(("job".to_string(), Json::str(job.clone())));
        }
        members.extend(self.fields.iter().cloned());
        Json::Obj(members)
    }

    pub fn from_json(doc: &Json) -> Result<OpEvent, String> {
        let seq = doc
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or("event is missing `seq`")?;
        let unix_ms = doc
            .get("unix_ms")
            .and_then(Json::as_u64)
            .ok_or("event is missing `unix_ms`")?;
        let kind_str = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("event is missing `kind`")?;
        let kind =
            OpKind::parse(kind_str).ok_or_else(|| format!("unknown event kind `{kind_str}`"))?;
        let job = doc.get("job").and_then(Json::as_str).map(str::to_string);
        let fields = doc
            .as_obj()
            .ok_or("event is not an object")?
            .iter()
            .filter(|(k, _)| !matches!(k.as_str(), "seq" | "unix_ms" | "kind" | "job"))
            .cloned()
            .collect();
        Ok(OpEvent {
            seq,
            unix_ms,
            kind,
            job,
            fields,
        })
    }
}

/// Current wall clock as milliseconds since the Unix epoch.
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

struct LogInner {
    path: PathBuf,
    max_bytes: u64,
    file: File,
    written: u64,
}

impl LogInner {
    fn append(&mut self, line: &str) -> io::Result<()> {
        // Rotate *before* writing so a single event is never split
        // across generations; `path.1` holds the previous generation.
        if self.written > 0 && self.written + line.len() as u64 + 1 > self.max_bytes {
            let old = self.path.with_extension(format!(
                "{}1",
                self.path
                    .extension()
                    .map(|e| format!("{}.", e.to_string_lossy()))
                    .unwrap_or_default()
            ));
            let _ = std::fs::rename(&self.path, &old);
            self.file = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&self.path)?;
            self.written = 0;
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        // Flush per event: after kill -9 the log tail is the last
        // fully-emitted event, which the flight dump's last_seq must
        // match.
        self.file.flush()?;
        self.written += line.len() as u64 + 1;
        Ok(())
    }
}

/// The daemon's operational-event hub: sequence numbering, the flight
/// ring, and the optional rotating JSONL log. Shared via `Arc`; all
/// methods take `&self`.
pub struct OpsPlane {
    seq: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<OpEvent>>,
    log: Option<Mutex<LogInner>>,
}

impl OpsPlane {
    pub fn new(flight_capacity: usize) -> OpsPlane {
        OpsPlane {
            seq: AtomicU64::new(0),
            capacity: flight_capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            log: None,
        }
    }

    /// Like [`OpsPlane::new`], also appending every event as one JSON
    /// line to `path`, rotating to `<path>.1` when the file would
    /// exceed `max_bytes`.
    pub fn with_log(flight_capacity: usize, path: &Path, max_bytes: u64) -> io::Result<OpsPlane> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let written = file.metadata()?.len();
        let mut plane = OpsPlane::new(flight_capacity);
        plane.log = Some(Mutex::new(LogInner {
            path: path.to_path_buf(),
            max_bytes: max_bytes.max(1024),
            file,
            written,
        }));
        Ok(plane)
    }

    /// Record one event; returns its sequence number. The ring insert
    /// and the (optional) log append happen before this returns, so a
    /// caller that observes seq `n` knows events `1..=n` are durable in
    /// the log.
    pub fn emit(&self, kind: OpKind, job: Option<&str>, fields: Vec<(&str, Json)>) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let ev = OpEvent {
            seq,
            unix_ms: unix_ms_now(),
            kind,
            job: job.map(str::to_string),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        };
        if let Some(log) = &self.log {
            let line = ev.to_json().to_string_compact();
            let mut inner = log.lock().unwrap();
            if let Err(e) = inner.append(&line) {
                eprintln!("louvaind: event log write failed: {e}");
            }
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
        seq
    }

    /// Highest sequence number emitted so far (0 before any event).
    pub fn last_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The flight ring's current contents, oldest first.
    pub fn events(&self) -> Vec<OpEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Dump the flight ring plus `metrics` to `dir/flight-<unix_ms>.json`
    /// atomically (write temp, fsync, rename) and return the path. The
    /// dump itself is recorded as a [`OpKind::FlightDump`] event *before*
    /// the snapshot is taken, so the dump contains its own event as the
    /// newest one and — with the per-event-flushed JSONL log — its
    /// `last_seq` equals the event-log tail's sequence number at dump
    /// time. `last_seq` is read off the snapshotted ring, never the live
    /// counter, so it always names the newest contained event even if
    /// other threads keep emitting.
    pub fn dump_flight(
        &self,
        dir: &Path,
        reason: &str,
        metrics: &MetricsSnapshot,
    ) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let now = unix_ms_now();
        let path = dir.join(format!("flight-{now}.json"));
        self.emit(
            OpKind::FlightDump,
            None,
            vec![
                ("reason", Json::str(reason)),
                ("path", Json::str(path.to_string_lossy().into_owned())),
            ],
        );
        let events = self.events();
        let last_seq = events.last().map(|e| e.seq).unwrap_or(0);
        let doc = Json::Obj(vec![
            ("magic".to_string(), Json::str(FLIGHT_MAGIC)),
            ("version".to_string(), Json::Num(FLIGHT_VERSION as f64)),
            ("reason".to_string(), Json::str(reason)),
            ("dumped_unix_ms".to_string(), Json::Num(now as f64)),
            ("last_seq".to_string(), Json::Num(last_seq as f64)),
            (
                "events".to_string(),
                Json::Arr(events.iter().map(OpEvent::to_json).collect()),
            ),
            ("metrics".to_string(), metrics_to_json(metrics)),
        ]);
        let tmp = dir.join(format!(".flight-{now}.json.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(doc.to_string_pretty().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// Parse and sanity-check a flight dump: magic, version, and that
/// `last_seq` equals the newest contained event's sequence number.
/// Returns `(reason, last_seq, events)`.
pub fn parse_flight_dump(text: &str) -> Result<(String, u64, Vec<OpEvent>), String> {
    let doc = Json::parse(text).map_err(|e| format!("flight dump is not JSON: {e:?}"))?;
    if doc.get("magic").and_then(Json::as_str) != Some(FLIGHT_MAGIC) {
        return Err("flight dump has wrong magic".into());
    }
    if doc.get("version").and_then(Json::as_u64) != Some(FLIGHT_VERSION as u64) {
        return Err("flight dump has unknown version".into());
    }
    let reason = doc
        .get("reason")
        .and_then(Json::as_str)
        .ok_or("flight dump is missing `reason`")?
        .to_string();
    let last_seq = doc
        .get("last_seq")
        .and_then(Json::as_u64)
        .ok_or("flight dump is missing `last_seq`")?;
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("flight dump is missing `events`")?
        .iter()
        .map(OpEvent::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    if let Some(newest) = events.last() {
        if newest.seq != last_seq {
            return Err(format!(
                "flight dump last_seq {last_seq} != newest event seq {}",
                newest.seq
            ));
        }
    }
    Ok((reason, last_seq, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "louvain-ops-{tag}-{}-{}",
            std::process::id(),
            unix_ms_now()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn events_round_trip_through_json() {
        let ev = OpEvent {
            seq: 7,
            unix_ms: 1_700_000_000_123,
            kind: OpKind::PhaseCompleted,
            job: Some("j1".into()),
            fields: vec![
                ("phase".to_string(), Json::Num(2.0)),
                ("modularity".to_string(), Json::Num(0.437)),
            ],
        };
        let back = OpEvent::from_json(&ev.to_json()).unwrap();
        assert_eq!(back, ev);
        assert!(OpEvent::from_json(&Json::parse(r#"{"seq":1}"#).unwrap()).is_err());
        for kind in [
            OpKind::JobAccepted,
            OpKind::JobShed,
            OpKind::DrainEnd,
            OpKind::FlightDump,
        ] {
            assert_eq!(OpKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(OpKind::parse("job_exploded"), None);
    }

    #[test]
    fn ring_is_bounded_and_seq_is_monotonic() {
        let plane = OpsPlane::new(3);
        for i in 0..5u64 {
            let seq = plane.emit(OpKind::JobAccepted, Some("j"), vec![]);
            assert_eq!(seq, i + 1);
        }
        let events = plane.events();
        assert_eq!(events.len(), 3, "ring keeps only the newest N");
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(plane.last_seq(), 5);
    }

    #[test]
    fn event_log_appends_jsonl_and_rotates_by_size() {
        let dir = tmpdir("rotate");
        let path = dir.join("events.jsonl");
        // Tiny bound (floored to 1024) forces rotation after a handful
        // of ~100-byte events.
        let plane = OpsPlane::with_log(64, &path, 1).unwrap();
        for i in 0..40 {
            plane.emit(
                OpKind::JobAccepted,
                Some(&format!("job-{i}")),
                vec![("queue_depth", Json::Num(i as f64))],
            );
        }
        let rotated = path.with_extension("jsonl.1");
        assert!(rotated.exists(), "log should have rotated at least once");
        // Both generations parse line by line, and the live tail's seq
        // is the plane's last_seq.
        let tail = std::fs::read_to_string(&path).unwrap();
        let mut last = None;
        for line in tail.lines() {
            last = Some(OpEvent::from_json(&Json::parse(line).unwrap()).unwrap());
        }
        assert_eq!(last.unwrap().seq, plane.last_seq());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flight_dump_is_parseable_and_seq_consistent() {
        let dir = tmpdir("flight");
        let plane = OpsPlane::new(8);
        plane.emit(OpKind::JobAccepted, Some("a"), vec![]);
        plane.emit(OpKind::JobDone, Some("a"), vec![]);
        let reg = MetricsRegistry::new();
        reg.counter_add("serve.jobs_completed", 1);
        let path = plane.dump_flight(&dir, "test", &reg.snapshot()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let (reason, last_seq, events) = parse_flight_dump(&text).unwrap();
        assert_eq!(reason, "test");
        // The dump event itself is emitted before the snapshot, so the
        // dump contains it as its newest event and last_seq matches
        // both the ring and (when logging) the event-log tail.
        assert_eq!(last_seq, 3);
        assert_eq!(events.len(), 3);
        assert_eq!(events.last().unwrap().kind, OpKind::FlightDump);
        assert_eq!(plane.last_seq(), 3);
        assert!(parse_flight_dump("{}").is_err());
        assert!(parse_flight_dump("not json").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
