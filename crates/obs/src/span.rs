//! RAII spans, instant markers, and the thread-local observer state.
//!
//! Recording is a two-switch design: a process-global enable flag (one
//! relaxed atomic load on the fast path — the ≤2% disabled-overhead
//! budget) and a thread-local observer installed per rank thread by
//! [`crate::Collector::install`]. A span records its wall-clock duration
//! *and* the delta of the thread's modeled-seconds clock (advanced by the
//! α-β cost model in `louvain-comm` and the work counters in
//! `louvain-dist`), so both timelines ride on every event.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::metrics::MetricsRegistry;
use crate::progress::ProgressMerger;
use crate::ring::EventRing;
use crate::telemetry::TelemetryLog;

// ---------------------------------------------------------------------------
// Global enable flags
// ---------------------------------------------------------------------------

/// Bit set in [`FLAGS`] while tracing is enabled.
pub(crate) const FLAG_TRACE: u32 = 1 << 0;
/// Bit set in [`FLAGS`] while at least one live progress subscriber
/// exists (see [`crate::progress::ProgressScope`]).
pub(crate) const FLAG_PROGRESS: u32 = 1 << 1;

/// One word holds every recording switch so the disabled fast path stays
/// a single relaxed atomic load even with multiple consumers (tracing,
/// live progress streaming).
static FLAGS: AtomicU32 = AtomicU32::new(0);

/// Turn tracing on or off process-wide. Spans opened while disabled are
/// no-ops even if tracing is enabled before they close. Leaves the
/// progress-subscriber bit untouched.
pub fn set_enabled(on: bool) {
    if on {
        FLAGS.fetch_or(FLAG_TRACE, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!FLAG_TRACE, Ordering::Relaxed);
    }
}

/// Whether tracing is currently enabled. This is the only cost a span
/// site pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & FLAG_TRACE != 0
}

/// All recording flags in one load; `0` means every consumer is off and
/// recording sites return immediately.
#[inline]
pub(crate) fn recording_flags() -> u32 {
    FLAGS.load(Ordering::Relaxed)
}

/// Whether *any* recording consumer (tracing or a live progress
/// subscriber) is on. Sites that prepare an [`crate::IterationRecord`]
/// gate on this — still a single relaxed load when everything is off —
/// so the record reaches progress watchers even when tracing is
/// disabled.
#[inline]
pub fn telemetry_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

pub(crate) fn set_flag(bit: u32, on: bool) {
    if on {
        FLAGS.fetch_or(bit, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Enable tracing if the `LOUVAIN_TRACE` environment variable is set to
/// anything other than `0`, `false`, or the empty string. Returns the
/// resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("LOUVAIN_TRACE") {
        let on = !matches!(v.as_str(), "" | "0" | "false" | "off");
        if on {
            set_enabled(true);
        }
    }
    enabled()
}

// ---------------------------------------------------------------------------
// Thread-local observer + modeled clock
// ---------------------------------------------------------------------------

/// Per-thread recording state, installed by the collector.
#[derive(Clone)]
pub(crate) struct ThreadObserver {
    pub ring: Arc<EventRing>,
    /// Shared job epoch: all ranks timestamp against the same `Instant`,
    /// so their events land on one timeline.
    pub epoch: Instant,
    pub metrics: Arc<MetricsRegistry>,
    pub telemetry: Arc<TelemetryLog>,
    /// Rank this observer records for.
    pub rank: usize,
    /// Execution attempt of the rank this observer records for (0 on
    /// the first attempt, bumped after each crash/hang recovery).
    pub attempt: u32,
    /// Live progress fan-in, present when a subscriber is watching the
    /// job this observer belongs to.
    pub progress: Option<Arc<ProgressMerger>>,
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static OBSERVER: RefCell<Option<ThreadObserver>> = const { RefCell::new(None) };
    /// Monotone modeled-seconds clock for this thread.
    static MODELED: Cell<f64> = const { Cell::new(0.0) };
    /// Small process-wide id for this thread (Chrome `tid`).
    static TID: Cell<u32> = const { Cell::new(0) };
}

pub(crate) fn install_observer(obs: ThreadObserver) -> Option<ThreadObserver> {
    OBSERVER.with(|o| o.borrow_mut().replace(obs))
}

pub(crate) fn uninstall_observer(prev: Option<ThreadObserver>) {
    OBSERVER.with(|o| *o.borrow_mut() = prev);
}

fn current_tid() -> u32 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Advance this thread's modeled-seconds clock. Called by the comm layer
/// (α-β transfer model) and compute work counters; open spans observe the
/// clock's delta.
#[inline]
pub fn add_modeled_seconds(seconds: f64) {
    if enabled() {
        MODELED.with(|m| m.set(m.get() + seconds));
    }
}

/// Current value of this thread's modeled-seconds clock.
pub fn modeled_seconds_now() -> f64 {
    MODELED.with(Cell::get)
}

pub(crate) fn with_observer<R>(f: impl FnOnce(&ThreadObserver) -> R) -> Option<R> {
    OBSERVER.with(|o| o.borrow().as_ref().map(f))
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct SpanInner {
    name: &'static str,
    cat: &'static str,
    start: Instant,
    start_ts_ns: u64,
    start_modeled: f64,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII guard for an open span; the event is recorded on drop. Obtained
/// from [`span`], [`span_cat`], or the [`span!`](crate::span!) macro.
/// When tracing is disabled or no observer is installed the guard is
/// inert and free.
#[must_use = "a span records its duration when dropped; binding it to _ closes it immediately"]
pub struct SpanGuard(Option<SpanInner>);

impl SpanGuard {
    /// A guard that records nothing (disabled fast path).
    pub const fn noop() -> Self {
        SpanGuard(None)
    }

    /// Attach an argument after the span opened (e.g. a result computed
    /// inside the span, like the number of moves in a sweep).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(inner) = &mut self.0 {
            inner.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        let modeled = modeled_seconds_now() - inner.start_modeled;
        with_observer(|obs| {
            obs.ring.push(TraceEvent {
                name: inner.name,
                cat: inner.cat,
                kind: EventKind::Complete { dur_ns },
                ts_ns: inner.start_ts_ns,
                tid: current_tid(),
                modeled_seconds: modeled,
                attempt: obs.attempt,
                args: inner.args,
            });
        });
    }
}

/// Open a span in the default category. See [`span_cat`].
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "louvain", Vec::new())
}

/// Open a span with an explicit category and initial arguments. Returns
/// an inert guard unless tracing is enabled *and* an observer is
/// installed on this thread.
pub fn span_cat(
    name: &'static str,
    cat: &'static str,
    args: Vec<(&'static str, ArgValue)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard::noop();
    }
    let Some(start_ts_ns) = with_observer(|obs| obs.epoch.elapsed().as_nanos() as u64) else {
        return SpanGuard::noop();
    };
    SpanGuard(Some(SpanInner {
        name,
        cat,
        start: Instant::now(),
        start_ts_ns,
        start_modeled: modeled_seconds_now(),
        args,
    }))
}

/// Record a point-in-time marker event.
pub fn instant(name: &'static str, cat: &'static str, args: Vec<(&'static str, ArgValue)>) {
    if !enabled() {
        return;
    }
    with_observer(|obs| {
        obs.ring.push(TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            ts_ns: obs.epoch.elapsed().as_nanos() as u64,
            tid: current_tid(),
            modeled_seconds: 0.0,
            attempt: obs.attempt,
            args,
        });
    });
}

/// Record a completed span retroactively: the span ends *now* and lasted
/// `dur_ns`. Used for sub-spans whose extent is known only after the
/// fact — e.g. the wait/transfer split of a comm step, where the idle
/// time is accumulated by the blocking receive loops and only totalled
/// when the step closes.
pub fn complete_span(
    name: &'static str,
    cat: &'static str,
    dur_ns: u64,
    modeled_seconds: f64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    with_observer(|obs| {
        let now_ns = obs.epoch.elapsed().as_nanos() as u64;
        obs.ring.push(TraceEvent {
            name,
            cat,
            kind: EventKind::Complete { dur_ns },
            ts_ns: now_ns.saturating_sub(dur_ns),
            tid: current_tid(),
            modeled_seconds,
            attempt: obs.attempt,
            args,
        });
    });
}

/// Open a span: `span!("phase")`, `span!("phase", phase = 2, tau = 0.01)`,
/// or with a category `span!(cat "comm", "ghost_refresh", bytes = n)`.
/// Binds to an RAII [`SpanGuard`]; the span closes when the guard drops.
#[macro_export]
macro_rules! span {
    (cat $cat:literal, $name:literal $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::span_cat($name, $cat, vec![$((stringify!($k), $crate::ArgValue::from($v))),*])
    };
    ($name:literal $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::span_cat($name, "louvain", vec![$((stringify!($k), $crate::ArgValue::from($v))),*])
    };
}

// ---------------------------------------------------------------------------
// Stopwatch
// ---------------------------------------------------------------------------

/// Wall-clock + modeled-seconds stopwatch: the one consistent replacement
/// for the ad-hoc `Instant::now()` pairs that used to live in the
/// runner, API glue, and bench harness.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
    start_modeled: f64,
}

impl Stopwatch {
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
            start_modeled: modeled_seconds_now(),
        }
    }

    /// Wall-clock seconds since start.
    pub fn wall_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Modeled seconds accrued on this thread since start.
    pub fn modeled_seconds(&self) -> f64 {
        modeled_seconds_now() - self.start_modeled
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // The enable flag is process-global and `cargo test` threads share
    // it, so every test that flips it runs under this lock.
    pub(crate) static ENABLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_ring<R>(f: impl FnOnce() -> R) -> (R, Vec<TraceEvent>) {
        let ring = Arc::new(EventRing::with_capacity(64));
        let prev = install_observer(ThreadObserver {
            ring: Arc::clone(&ring),
            epoch: Instant::now(),
            metrics: Arc::new(MetricsRegistry::new()),
            telemetry: Arc::new(TelemetryLog::default()),
            rank: 0,
            attempt: 0,
            progress: None,
        });
        let out = f();
        uninstall_observer(prev);
        let mut ring = Arc::try_unwrap(ring).expect("sole owner");
        (out, ring.drain())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(false);
        let ((), events) = with_ring(|| {
            let mut g = span!("phase", phase = 1);
            g.arg("x", 3u64);
            drop(g);
            instant("marker", "t", vec![]);
        });
        assert!(events.is_empty());
    }

    #[test]
    fn enabled_spans_record_complete_events_with_args() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        let ((), events) = with_ring(|| {
            let mut g = span!(cat "comm", "ghost_refresh", bytes = 128u64);
            add_modeled_seconds(0.25);
            g.arg("round", 2u64);
            drop(g);
            instant("poisoned", "t", vec![("rank", ArgValue::U64(3))]);
        });
        set_enabled(false);
        assert_eq!(events.len(), 2);
        let span_ev = &events[0];
        assert_eq!(span_ev.name, "ghost_refresh");
        assert_eq!(span_ev.cat, "comm");
        assert!(matches!(span_ev.kind, EventKind::Complete { .. }));
        assert!((span_ev.modeled_seconds - 0.25).abs() < 1e-12);
        assert_eq!(
            span_ev.args,
            vec![("bytes", ArgValue::U64(128)), ("round", ArgValue::U64(2))]
        );
        assert_eq!(events[1].name, "poisoned");
        assert!(matches!(events[1].kind, EventKind::Instant));
    }

    #[test]
    fn progress_flag_does_not_enable_tracing() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(false);
        set_flag(FLAG_PROGRESS, true);
        assert!(!enabled(), "progress subscribers must not enable tracing");
        assert_eq!(recording_flags(), FLAG_PROGRESS);
        // Spans stay inert: only telemetry sites consult the progress bit.
        let ((), events) = with_ring(|| {
            let _g = span!("phase", phase = 1);
            instant("marker", "t", vec![]);
        });
        assert!(events.is_empty());
        set_flag(FLAG_PROGRESS, false);
        assert_eq!(recording_flags(), 0);
    }

    #[test]
    fn spans_without_observer_are_inert() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        // No observer installed on this thread: must not panic or leak.
        let g = span!("orphan", n = 1u64);
        drop(g);
        instant("orphan", "t", vec![]);
        set_enabled(false);
    }

    #[test]
    fn nested_spans_close_in_lifo_order() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        let ((), events) = with_ring(|| {
            let outer = span!("outer");
            {
                let _inner = span!("inner");
            }
            drop(outer);
        });
        set_enabled(false);
        // Inner closes (and records) first.
        assert_eq!(
            events.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec!["inner", "outer"]
        );
        assert!(
            events[0].ts_ns >= events[1].ts_ns,
            "inner starts after outer"
        );
    }

    #[test]
    fn stopwatch_tracks_wall_and_modeled_time() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        let sw = Stopwatch::start();
        add_modeled_seconds(1.5);
        add_modeled_seconds(0.5);
        assert!((sw.modeled_seconds() - 2.0).abs() < 1e-12);
        assert!(sw.wall_seconds() >= 0.0);
        set_enabled(false);
    }

    #[test]
    fn modeled_clock_ignored_when_disabled() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(false);
        let before = modeled_seconds_now();
        add_modeled_seconds(10.0);
        assert_eq!(modeled_seconds_now(), before);
    }
}
