//! The unified, versioned run artifact: a magic-tagged JSON envelope
//! (like the checkpoint header) holding any number of labeled runs,
//! each a full [`RunReport`] plus its per-iteration telemetry rows.
//!
//! One schema replaces the ad-hoc shapes of the committed bench files:
//! `lens` reads only artifacts, and [`RunArtifact::from_any_json_str`]
//! lifts every legacy shape (`BENCH_PR1/PR3` sweep rows, `BENCH_PR4`
//! watchdog rows, `RUNREPORT_PR2` embedded reports, or a bare
//! `RunReport` document) into it, so the whole PR history diffs with
//! one tool.

use crate::json::{Json, JsonError};
use crate::metrics::{Histogram, HIST_BUCKETS};
use crate::report::RunReport;
use crate::telemetry::TelemetryRow;

/// First bytes of every artifact (the `magic` field).
pub const ARTIFACT_MAGIC: &str = "LVRA";
/// Artifact schema version (bump on breaking changes).
pub const ARTIFACT_VERSION: u32 = 1;

/// One labeled run inside an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct RunEntry {
    /// Stable key used to match runs across artifacts when diffing;
    /// by convention `<graph>/p<ranks>/<mode>`.
    pub label: String,
    pub report: RunReport,
    /// Per-(phase, iteration) convergence rows; empty when the run was
    /// not traced.
    pub telemetry: Vec<TelemetryRow>,
}

/// A versioned collection of runs — the one on-disk analytics format.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunArtifact {
    pub name: String,
    pub description: String,
    pub runs: Vec<RunEntry>,
}

/// The conventional entry label: `<graph>/p<ranks>/<mode>`.
pub fn run_label(graph: &str, ranks: usize, mode: &str) -> String {
    format!("{graph}/p{ranks}/{mode}")
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u(v: u64) -> Json {
    Json::Num(v as f64)
}

fn hist_to_json(h: &Histogram) -> Json {
    let top = h.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
    let (p50, p95, p99) = h.quantile_summary();
    obj(vec![
        ("count", num_u(h.count)),
        ("sum", num_u(h.sum)),
        ("p50", num_u(p50)),
        ("p95", num_u(p95)),
        ("p99", num_u(p99)),
        (
            "log2_buckets",
            Json::Arr(h.buckets[..top].iter().map(|&b| num_u(b)).collect()),
        ),
    ])
}

fn hist_from_json(doc: &Json) -> Result<Histogram, String> {
    let mut h = Histogram {
        count: u(doc, "count")?,
        sum: u(doc, "sum")?,
        ..Default::default()
    };
    let buckets = doc
        .get("log2_buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing `log2_buckets`")?;
    for (i, b) in buckets.iter().enumerate() {
        if i < HIST_BUCKETS {
            h.buckets[i] = b.as_u64().ok_or("histogram bucket is not a u64")?;
        }
    }
    Ok(h)
}

fn telemetry_to_json(row: &TelemetryRow) -> Json {
    obj(vec![
        ("phase", num_u(row.phase)),
        ("iteration", num_u(row.iteration)),
        ("modularity", Json::Num(row.modularity)),
        ("delta_q", Json::Num(row.delta_q)),
        ("moves", num_u(row.moves)),
        ("active", num_u(row.active)),
        ("vertices", num_u(row.vertices)),
        ("communities", num_u(row.communities)),
        ("community_sizes", hist_to_json(&row.community_sizes)),
        (
            "ghost_bytes_per_rank",
            Json::Arr(row.ghost_bytes_per_rank.iter().map(|&b| num_u(b)).collect()),
        ),
    ])
}

fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn f(doc: &Json, key: &str) -> Result<f64, String> {
    get(doc, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` is not a number"))
}

fn u(doc: &Json, key: &str) -> Result<u64, String> {
    get(doc, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not a u64"))
}

fn s(doc: &Json, key: &str) -> Result<String, String> {
    Ok(get(doc, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?
        .to_string())
}

fn telemetry_from_json(doc: &Json) -> Result<TelemetryRow, String> {
    Ok(TelemetryRow {
        phase: u(doc, "phase")?,
        iteration: u(doc, "iteration")?,
        modularity: f(doc, "modularity")?,
        delta_q: f(doc, "delta_q")?,
        moves: u(doc, "moves")?,
        active: u(doc, "active")?,
        vertices: u(doc, "vertices")?,
        communities: u(doc, "communities")?,
        community_sizes: hist_from_json(get(doc, "community_sizes")?)?,
        ghost_bytes_per_rank: get(doc, "ghost_bytes_per_rank")?
            .as_arr()
            .ok_or("`ghost_bytes_per_rank` is not an array")?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| "ghost bytes not u64".to_string()))
            .collect::<Result<_, String>>()?,
    })
}

impl RunArtifact {
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("magic", Json::str(ARTIFACT_MAGIC)),
            ("artifact_version", num_u(ARTIFACT_VERSION as u64)),
            ("name", Json::str(self.name.clone())),
            ("description", Json::str(self.description.clone())),
            (
                "runs",
                Json::Arr(
                    self.runs
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("label", Json::str(r.label.clone())),
                                ("report", r.report.to_json()),
                                (
                                    "telemetry",
                                    Json::Arr(r.telemetry.iter().map(telemetry_to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON document (the on-disk format).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Strict parse of an `LVRA` document.
    pub fn from_json(doc: &Json) -> Result<RunArtifact, String> {
        let magic = s(doc, "magic")?;
        if magic != ARTIFACT_MAGIC {
            return Err(format!("bad artifact magic `{magic}`"));
        }
        let version = u(doc, "artifact_version")?;
        if version != ARTIFACT_VERSION as u64 {
            return Err(format!("unsupported artifact_version {version}"));
        }
        Ok(RunArtifact {
            name: s(doc, "name")?,
            description: s(doc, "description")?,
            runs: get(doc, "runs")?
                .as_arr()
                .ok_or("`runs` is not an array")?
                .iter()
                .map(|r| {
                    Ok(RunEntry {
                        label: s(r, "label")?,
                        report: RunReport::from_json(get(r, "report")?)?,
                        telemetry: get(r, "telemetry")?
                            .as_arr()
                            .ok_or("`telemetry` is not an array")?
                            .iter()
                            .map(telemetry_from_json)
                            .collect::<Result<_, String>>()?,
                    })
                })
                .collect::<Result<_, String>>()?,
        })
    }

    pub fn from_json_str(text: &str) -> Result<RunArtifact, String> {
        let doc = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Parse any committed run-data shape into an artifact: a native
    /// `LVRA` document, a bare `RunReport`, or one of the legacy bench
    /// files (`BENCH_PR1`/`BENCH_PR3` sweep rows, `BENCH_PR4` watchdog
    /// rows, `RUNREPORT_PR2` embedded reports).
    pub fn from_any_json_str(text: &str) -> Result<RunArtifact, String> {
        let doc = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        if doc.get("magic").is_some() {
            return Self::from_json(&doc);
        }
        if doc.get("run_report_version").is_some() {
            let report = RunReport::from_json(&doc)?;
            let label = run_label(&report.graph, report.ranks, &report.variant);
            return Ok(RunArtifact {
                name: "run".into(),
                description: String::new(),
                runs: vec![RunEntry {
                    label,
                    report,
                    telemetry: Vec::new(),
                }],
            });
        }
        let name = doc
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or("legacy")
            .to_string();
        let description = doc
            .get("description")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let mut runs = Vec::new();
        if let Some(rows) = doc.get("runs").and_then(Json::as_arr) {
            for row in rows {
                runs.push(legacy_sweep_entry(row)?);
            }
        }
        if let Some(rows) = doc.get("watchdog").and_then(Json::as_arr) {
            for row in rows {
                runs.push(legacy_watchdog_entry(row)?);
            }
        }
        if let Some(reports) = doc.get("reports").and_then(Json::as_arr) {
            for rd in reports {
                let report = RunReport::from_json(rd)?;
                let label = run_label(&report.graph, report.ranks, &report.variant);
                runs.push(RunEntry {
                    label,
                    report,
                    telemetry: Vec::new(),
                });
            }
        }
        if runs.is_empty() {
            return Err("unrecognized document: no magic, reports, runs, or watchdog rows".into());
        }
        Ok(RunArtifact {
            name,
            description,
            runs,
        })
    }
}

/// Lift one `BENCH_PR1`/`BENCH_PR3` sweep row into a [`RunEntry`]. The
/// legacy rows are flat: per-step bytes, modeled seconds, and wall
/// milliseconds; message counts and per-rank detail were never recorded
/// and stay zero.
fn legacy_sweep_entry(row: &Json) -> Result<RunEntry, String> {
    use crate::report::{ModeledBreakdown, StepTotal};
    let lu = |key: &str| row.get(key).and_then(Json::as_u64).unwrap_or(0);
    let lf = |key: &str| row.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let graph = s(row, "graph")?;
    let ranks = u(row, "ranks")? as usize;
    let mode = s(row, "mode")?;
    let variant = row
        .get("variant")
        .and_then(Json::as_str)
        .map(|v| format!("{v}+{mode}"))
        .unwrap_or_else(|| mode.clone());
    let step_totals: Vec<StepTotal> = [
        ("ghost_refresh", lu("ghost_refresh_bytes")),
        ("community_pull", lu("community_pull_bytes")),
        ("delta_push", lu("delta_push_bytes")),
        ("reduction", lu("reduction_bytes")),
    ]
    .into_iter()
    .map(|(step, bytes)| StepTotal {
        step: step.into(),
        bytes,
        messages: 0,
        wait_ns: 0,
    })
    .collect();
    let total_bytes = step_totals.iter().map(|t| t.bytes).sum();
    Ok(RunEntry {
        label: run_label(&graph, ranks, &mode),
        report: RunReport {
            graph,
            vertices: lu("n"),
            edges: lu("m"),
            ranks,
            variant,
            threads_per_rank: 1,
            modularity: f(row, "modularity")?,
            phases: lu("phases"),
            iterations: lu("iterations"),
            wall_seconds: lf("wall_ms") / 1000.0,
            modeled: ModeledBreakdown {
                compute: lf("modeled_compute_seconds"),
                comm: lf("modeled_comm_seconds"),
                reduce: lf("modeled_reduce_seconds"),
                rebuild: lf("modeled_rebuild_seconds"),
            },
            step_totals,
            total_bytes,
            ..Default::default()
        },
        telemetry: Vec::new(),
    })
}

/// Lift one `BENCH_PR4` watchdog A-B row: the watchdog-armed arm's wall
/// time, with the wd_* counters landing in the health section.
fn legacy_watchdog_entry(row: &Json) -> Result<RunEntry, String> {
    use crate::report::HealthTotals;
    let lu = |key: &str| row.get(key).and_then(Json::as_u64).unwrap_or(0);
    let graph = s(row, "graph")?;
    let ranks = u(row, "ranks")? as usize;
    let mode = s(row, "mode")?;
    Ok(RunEntry {
        label: format!("{}+wd", run_label(&graph, ranks, &mode)),
        report: RunReport {
            graph,
            vertices: lu("n"),
            edges: lu("m"),
            ranks,
            variant: format!("{mode}+wd"),
            threads_per_rank: 1,
            modularity: f(row, "modularity")?,
            phases: lu("phases"),
            wall_seconds: lu("wall_ms_watchdog_on") as f64 / 1000.0,
            health: HealthTotals {
                checksum_rejects: lu("checksum_rejects"),
                wd_timeouts: lu("wd_timeouts"),
                wd_retries: lu("wd_retries"),
                wd_stragglers: lu("wd_stragglers"),
                ..Default::default()
            },
            ..Default::default()
        },
        telemetry: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunArtifact {
        let mut sizes = Histogram::default();
        sizes.observe(3);
        sizes.observe(40);
        RunArtifact {
            name: "BENCH_TEST".into(),
            description: "sample".into(),
            runs: vec![RunEntry {
                label: run_label("lfr_3k", 2, "delta"),
                report: RunReport {
                    graph: "lfr_3k".into(),
                    vertices: 3000,
                    edges: 18000,
                    ranks: 2,
                    variant: "ET(0.25)+delta".into(),
                    threads_per_rank: 1,
                    modularity: 0.86,
                    phases: 4,
                    iterations: 12,
                    wall_seconds: 0.034,
                    ..Default::default()
                },
                telemetry: vec![TelemetryRow {
                    phase: 0,
                    iteration: 0,
                    modularity: 0.41,
                    delta_q: 0.0,
                    moves: 2210,
                    active: 3000,
                    vertices: 3000,
                    communities: 1800,
                    community_sizes: sizes,
                    ghost_bytes_per_rank: vec![1024, 980],
                }],
            }],
        }
    }

    #[test]
    fn artifact_round_trips_through_json() {
        let a = sample();
        let text = a.to_json_string();
        let back = RunArtifact::from_json_str(&text).expect("parse back");
        assert_eq!(back, a);
        // from_any must take the same path for native documents.
        assert_eq!(RunArtifact::from_any_json_str(&text).unwrap(), a);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut doc = sample().to_json();
        if let Json::Obj(members) = &mut doc {
            members[0].1 = Json::str("NOPE");
        }
        assert!(RunArtifact::from_json(&doc).unwrap_err().contains("magic"));
        let mut doc = sample().to_json();
        if let Json::Obj(members) = &mut doc {
            members[1].1 = Json::Num(99.0);
        }
        assert!(RunArtifact::from_json(&doc)
            .unwrap_err()
            .contains("artifact_version"));
    }

    #[test]
    fn legacy_sweep_rows_convert() {
        let text = r#"{
          "bench": "BENCH_PR3",
          "description": "sweep",
          "runs": [
            {"graph": "ssca2_4k", "n": 4000, "m": 64593, "ranks": 2,
             "variant": "ET(0.25)", "mode": "delta", "modularity": 0.988502,
             "phases": 3, "iterations": 5, "wall_ms": 9,
             "modeled_comm_seconds": 0.000048, "modeled_compute_seconds": 0.011612,
             "modeled_reduce_seconds": 0.000037, "modeled_rebuild_seconds": 0.003920,
             "ghost_refresh_bytes": 912, "community_pull_bytes": 2208,
             "delta_push_bytes": 24, "reduction_bytes": 336}
          ]
        }"#;
        let a = RunArtifact::from_any_json_str(text).expect("convert");
        assert_eq!(a.name, "BENCH_PR3");
        assert_eq!(a.runs.len(), 1);
        let e = &a.runs[0];
        assert_eq!(e.label, "ssca2_4k/p2/delta");
        assert_eq!(e.report.variant, "ET(0.25)+delta");
        assert_eq!(e.report.total_bytes, 912 + 2208 + 24 + 336);
        assert_eq!(e.report.step_totals[0].step, "ghost_refresh");
        assert!((e.report.wall_seconds - 0.009).abs() < 1e-12);
        assert_eq!(e.report.iterations, 5);
    }

    #[test]
    fn legacy_watchdog_rows_convert() {
        let text = r#"{
          "bench": "BENCH_PR4",
          "description": "wd",
          "watchdog": [
            {"graph": "lfr_3k", "n": 3000, "m": 18887, "ranks": 4, "mode": "delta",
             "modularity": 0.867489, "phases": 4, "wall_ms_watchdog_off": 36,
             "wall_ms_watchdog_on": 36, "wd_timeouts": 1, "wd_retries": 0,
             "wd_stragglers": 2, "checksum_rejects": 0, "bit_identical": true}
          ]
        }"#;
        let a = RunArtifact::from_any_json_str(text).expect("convert");
        assert_eq!(a.runs[0].label, "lfr_3k/p4/delta+wd");
        assert_eq!(a.runs[0].report.health.wd_timeouts, 1);
        assert_eq!(a.runs[0].report.health.wd_stragglers, 2);
        assert!((a.runs[0].report.wall_seconds - 0.036).abs() < 1e-12);
    }

    #[test]
    fn unknown_shapes_are_rejected() {
        assert!(RunArtifact::from_any_json_str("{\"x\": 1}").is_err());
        assert!(RunArtifact::from_any_json_str("not json").is_err());
    }
}
