//! Trace exporters: Chrome trace-event JSON (loadable in Perfetto /
//! `chrome://tracing`) and line-delimited JSONL.
//!
//! Mapping: each rank becomes one `pid` (with a `process_name` metadata
//! record so Perfetto labels the track "rank N"), each recording thread
//! one `tid`. Span events use phase `"X"` (complete), markers `"i"`
//! (instant). Timestamps and durations are microseconds, as the format
//! requires; the modeled-seconds reading rides along in `args` as
//! `modeled_ms` so both timelines are visible on every slice.

use crate::collector::TraceData;
use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::json::Json;

fn arg_to_json(v: &ArgValue) -> Json {
    match v {
        ArgValue::U64(n) => Json::Num(*n as f64),
        ArgValue::I64(n) => Json::Num(*n as f64),
        ArgValue::F64(n) => Json::Num(*n),
        ArgValue::Bool(b) => Json::Bool(*b),
        ArgValue::Str(s) => Json::str(*s),
    }
}

fn event_args(ev: &TraceEvent) -> Json {
    let mut members: Vec<(String, Json)> = ev
        .args
        .iter()
        .map(|(k, v)| (k.to_string(), arg_to_json(v)))
        .collect();
    if ev.modeled_seconds != 0.0 {
        members.push((
            "modeled_ms".to_string(),
            Json::Num(ev.modeled_seconds * 1e3),
        ));
    }
    Json::Obj(members)
}

fn event_record(rank: usize, ev: &TraceEvent) -> Json {
    let mut members = vec![
        ("name".to_string(), Json::str(ev.name)),
        ("cat".to_string(), Json::str(ev.cat)),
        ("pid".to_string(), Json::Num(rank as f64)),
        ("tid".to_string(), Json::Num(ev.tid as f64)),
        ("ts".to_string(), Json::Num(ev.ts_ns as f64 / 1e3)),
    ];
    match ev.kind {
        EventKind::Complete { dur_ns } => {
            members.insert(1, ("ph".to_string(), Json::str("X")));
            members.push(("dur".to_string(), Json::Num(dur_ns as f64 / 1e3)));
        }
        EventKind::Instant => {
            members.insert(1, ("ph".to_string(), Json::str("i")));
            members.push(("s".to_string(), Json::str("t")));
        }
    }
    if ev.attempt > 0 {
        members.push(("attempt".to_string(), Json::Num(ev.attempt as f64)));
    }
    members.push(("args".to_string(), event_args(ev)));
    Json::Obj(members)
}

fn metadata_record(rank: usize) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::str("process_name")),
        ("ph".to_string(), Json::str("M")),
        ("pid".to_string(), Json::Num(rank as f64)),
        ("tid".to_string(), Json::Num(0.0)),
        (
            "args".to_string(),
            Json::Obj(vec![(
                "name".to_string(),
                Json::str(format!("rank {rank}")),
            )]),
        ),
    ])
}

/// Per-(rank, tid) thread metadata: resilient runs record each recovery
/// attempt on a fresh thread (hence a fresh tid), so labeling the track
/// with its attempt keeps pre-crash and resumed events distinguishable
/// in the Perfetto UI.
fn thread_metadata_record(rank: usize, tid: u32, attempt: u32) -> Json {
    let label = if attempt > 0 {
        format!("rank {rank} attempt {attempt}")
    } else {
        format!("rank {rank}")
    };
    Json::Obj(vec![
        ("name".to_string(), Json::str("thread_name")),
        ("ph".to_string(), Json::str("M")),
        ("pid".to_string(), Json::Num(rank as f64)),
        ("tid".to_string(), Json::Num(tid as f64)),
        (
            "args".to_string(),
            Json::Obj(vec![
                ("name".to_string(), Json::str(label)),
                ("attempt".to_string(), Json::Num(attempt as f64)),
            ]),
        ),
    ])
}

/// Build the Chrome trace-event document as a [`Json`] value
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`). Events are
/// emitted globally sorted by timestamp.
pub fn chrome_trace(data: &TraceData) -> Json {
    let mut records: Vec<Json> = data.ranks.iter().map(|r| metadata_record(r.rank)).collect();
    // Thread tracks, labeled with the execution attempt that recorded
    // on them (first-seen attempt wins; a tid never spans attempts).
    for rank in &data.ranks {
        let mut seen: Vec<u32> = Vec::new();
        for ev in &rank.events {
            if !seen.contains(&ev.tid) {
                seen.push(ev.tid);
                records.push(thread_metadata_record(rank.rank, ev.tid, ev.attempt));
            }
        }
    }
    // Per-rank event lists are already time-sorted; k-way merge them so
    // the whole stream is monotonic.
    let mut cursors = vec![0usize; data.ranks.len()];
    loop {
        let mut best: Option<(u64, usize)> = None; // (ts, rank index)
        for (ci, rank) in data.ranks.iter().enumerate() {
            if let Some(ev) = rank.events.get(cursors[ci]) {
                if best.is_none_or(|(ts, _)| ev.ts_ns < ts) {
                    best = Some((ev.ts_ns, ci));
                }
            }
        }
        let Some((_, ci)) = best else { break };
        let rank = &data.ranks[ci];
        records.push(event_record(rank.rank, &rank.events[cursors[ci]]));
        cursors[ci] += 1;
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(records)),
        ("displayTimeUnit".to_string(), Json::str("ms")),
    ])
}

/// Serialize the Chrome trace-event document to a JSON string.
pub fn chrome_trace_json(data: &TraceData) -> String {
    chrome_trace(data).to_string_compact()
}

/// Serialize every event as one JSON object per line (rank-major order).
/// Friendlier than the Chrome format for `grep`/`jq`-style analysis.
pub fn jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    for rank in &data.ranks {
        for ev in &rank.events {
            let mut members = vec![
                ("rank".to_string(), Json::Num(rank.rank as f64)),
                ("name".to_string(), Json::str(ev.name)),
                ("cat".to_string(), Json::str(ev.cat)),
                ("ts_us".to_string(), Json::Num(ev.ts_ns as f64 / 1e3)),
                ("dur_us".to_string(), Json::Num(ev.dur_ns() as f64 / 1e3)),
                ("tid".to_string(), Json::Num(ev.tid as f64)),
            ];
            if ev.modeled_seconds != 0.0 {
                members.push(("modeled_s".to_string(), Json::Num(ev.modeled_seconds)));
            }
            if ev.attempt > 0 {
                members.push(("attempt".to_string(), Json::Num(ev.attempt as f64)));
            }
            if !ev.args.is_empty() {
                let args = ev
                    .args
                    .iter()
                    .map(|(k, v)| (k.to_string(), arg_to_json(v)))
                    .collect();
                members.push(("args".to_string(), Json::Obj(args)));
            }
            out.push_str(&Json::Obj(members).to_string_compact());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RankTrace;
    use crate::metrics::MetricsSnapshot;

    fn ev(name: &'static str, ts_ns: u64, dur_ns: u64, tid: u32) -> TraceEvent {
        TraceEvent {
            name,
            cat: "test",
            kind: if dur_ns == 0 {
                EventKind::Instant
            } else {
                EventKind::Complete { dur_ns }
            },
            ts_ns,
            tid,
            modeled_seconds: 0.001,
            attempt: 0,
            args: vec![("k", ArgValue::U64(7))],
        }
    }

    fn sample() -> TraceData {
        TraceData {
            ranks: vec![
                RankTrace {
                    rank: 0,
                    events: vec![ev("a", 1_000, 5_000, 1), ev("b", 4_000, 0, 1)],
                    dropped: 0,
                    metrics: MetricsSnapshot::default(),
                    telemetry: Vec::new(),
                },
                RankTrace {
                    rank: 1,
                    events: vec![ev("c", 2_000, 3_000, 2)],
                    dropped: 0,
                    metrics: MetricsSnapshot::default(),
                    telemetry: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_round_trips_and_is_monotonic() {
        let text = chrome_trace_json(&sample());
        let doc = Json::parse(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 2 process metadata + 2 thread metadata (tids 1, 2) + 3 events.
        assert_eq!(events.len(), 7);
        let mut last_ts = f64::NEG_INFINITY;
        let mut pids = std::collections::BTreeSet::new();
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            pids.insert(e.get("pid").and_then(Json::as_u64).unwrap());
            if ph == "M" {
                continue;
            }
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts, "timestamps must be monotonic");
            last_ts = ts;
        }
        assert_eq!(
            pids.into_iter().collect::<Vec<_>>(),
            vec![0, 1],
            "one pid per rank"
        );
        // Spot-check the complete event: µs conversion + modeled arg.
        let a = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("a"))
            .unwrap();
        assert_eq!(a.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(a.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(a.get("dur").and_then(Json::as_f64), Some(5.0));
        let args = a.get("args").unwrap();
        assert_eq!(args.get("k").and_then(Json::as_u64), Some(7));
        assert_eq!(args.get("modeled_ms").and_then(Json::as_f64), Some(1.0));
        // Instant event carries scope.
        let b = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("b"))
            .unwrap();
        assert_eq!(b.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(b.get("s").and_then(Json::as_str), Some("t"));
    }

    #[test]
    fn metadata_names_rank_tracks() {
        let doc = chrome_trace(&sample());
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let meta: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(meta.len(), 4, "2 process_name + 2 thread_name records");
        assert_eq!(
            meta[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("rank 0")
        );
        let threads: Vec<&&Json> = meta
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .collect();
        assert_eq!(threads.len(), 2);
        assert_eq!(
            threads[0]
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("rank 0")
        );
        assert_eq!(
            threads[0]
                .get("args")
                .and_then(|a| a.get("attempt"))
                .and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn resumed_attempts_get_labeled_tracks_and_attempt_fields() {
        let mut data = sample();
        // Rank 0's second event came from a resumed attempt on a new tid.
        data.ranks[0].events[1] = TraceEvent {
            attempt: 1,
            ..ev("b", 4_000, 0, 9)
        };
        let doc = chrome_trace(&data);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let resumed_thread = events
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("thread_name")
                    && e.get("tid").and_then(Json::as_u64) == Some(9)
            })
            .expect("thread metadata for the resumed attempt's tid");
        assert_eq!(
            resumed_thread
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("rank 0 attempt 1")
        );
        let b = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("b"))
            .unwrap();
        assert_eq!(b.get("attempt").and_then(Json::as_u64), Some(1));
        // The merged stream stays monotonic across the attempt boundary.
        let mut last_ts = f64::NEG_INFINITY;
        for e in events {
            if e.get("ph").and_then(Json::as_str) == Some("M") {
                continue;
            }
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts);
            last_ts = ts;
        }
        // JSONL carries the attempt too.
        let lines = jsonl(&data);
        assert!(lines.lines().any(|l| {
            let v = Json::parse(l).unwrap();
            v.get("name").and_then(Json::as_str) == Some("b")
                && v.get("attempt").and_then(Json::as_u64) == Some(1)
        }));
    }

    #[test]
    fn jsonl_emits_one_valid_object_per_line() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = Json::parse(line).expect("each line parses");
            assert!(v.get("rank").is_some());
            assert!(v.get("ts_us").is_some());
        }
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("name").and_then(Json::as_str), Some("a"));
        assert_eq!(first.get("dur_us").and_then(Json::as_f64), Some(5.0));
    }
}
