//! Zero-dependency Prometheus text-format exposition.
//!
//! Renders a [`MetricsSnapshot`] into the Prometheus text format
//! (version 0.0.4): counters become `<name>_total`, gauges expose their
//! last set value, and log2 histograms become native Prometheus
//! histograms with cumulative `le` buckets plus `_sum`/`_count`, with
//! the artifact-standard p50/p95/p99 upper bounds exported alongside as
//! gauges. Every exported name must be present in
//! [`crate::METRIC_REGISTRY`] — an unregistered name is a hard error,
//! so exposition can never drift from the registry the way ad-hoc call
//! sites could.
//!
//! Rendering is deterministic: snapshots are `BTreeMap`s, bucket edges
//! are fixed, and floats print via Rust's shortest-roundtrip `Display`.
//! Two snapshots with equal contents render byte-identically.

use std::collections::BTreeMap;

use crate::metrics::{Histogram, MetricsSnapshot};
use crate::{unregistered_metrics, METRIC_REGISTRY};

/// Map a registry metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and dashes become underscores.
pub fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c == '.' || c == '-' { '_' } else { c })
        .collect()
}

fn help_text(name: &str) -> &'static str {
    METRIC_REGISTRY
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, _, h)| *h)
        .unwrap_or("")
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        // Integral gauges print without a fraction so the output is
        // stable and diff-friendly.
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render `snap` as Prometheus exposition text. Fails (listing the
/// offending names) if the snapshot contains any metric missing from
/// [`crate::METRIC_REGISTRY`].
pub fn prometheus_text(snap: &MetricsSnapshot) -> Result<String, String> {
    let drift = unregistered_metrics(snap);
    if !drift.is_empty() {
        return Err(format!(
            "refusing to export unregistered metrics: {}",
            drift.join(", ")
        ));
    }
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let p = prometheus_name(name);
        out.push_str(&format!("# HELP {p}_total {}\n", help_text(name)));
        out.push_str(&format!("# TYPE {p}_total counter\n"));
        out.push_str(&format!("{p}_total {value}\n"));
    }
    for (name, g) in &snap.gauges {
        let p = prometheus_name(name);
        out.push_str(&format!("# HELP {p} {}\n", help_text(name)));
        out.push_str(&format!("# TYPE {p} gauge\n"));
        out.push_str(&format!("{p} {}\n", fmt_f64(g.last)));
    }
    for (name, h) in &snap.histograms {
        let p = prometheus_name(name);
        out.push_str(&format!("# HELP {p} {}\n", help_text(name)));
        out.push_str(&format!("# TYPE {p} histogram\n"));
        let top = h.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (i, &b) in h.buckets[..top].iter().enumerate() {
            cumulative += b;
            out.push_str(&format!(
                "{p}_bucket{{le=\"{}\"}} {cumulative}\n",
                Histogram::bucket_upper_edge(i)
            ));
        }
        out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{p}_sum {}\n", h.sum));
        out.push_str(&format!("{p}_count {}\n", h.count));
        let (p50, p95, p99) = h.quantile_summary();
        for (q, v) in [("p50", p50), ("p95", p95), ("p99", p99)] {
            out.push_str(&format!("# TYPE {p}_{q} gauge\n{p}_{q} {v}\n"));
        }
    }
    Ok(out)
}

/// Parse Prometheus exposition text into a flat `sample key → value`
/// map; the key includes the label set verbatim (e.g.
/// `serve_job_latency_ms_bucket{le="+Inf"}`). Comment and blank lines
/// are skipped. This is the subset `lens top` needs to read either a
/// scraped `metrics-text` response or a metrics file from disk.
pub fn parse_prometheus_text(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`; labels may hold spaces
        // inside quotes, so split at the last space.
        let Some(split) = line.rfind(' ') else {
            return Err(format!("line {}: no value in `{line}`", lineno + 1));
        };
        let (key, value) = line.split_at(split);
        let value = value.trim();
        let v: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value
                .parse()
                .map_err(|_| format!("line {}: bad value `{value}`", lineno + 1))?
        };
        out.insert(key.trim().to_string(), v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter_add("serve.jobs_accepted", 3);
        r.counter_add("serve.cache_hits", 1);
        r.gauge_set("serve.queue_depth", 2.0);
        r.gauge_set("modularity", 0.4375);
        for v in [12u64, 900, 900, 15_000] {
            r.hist_observe("serve.job_latency_ms", v);
        }
        r.snapshot()
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_histograms() {
        let text = prometheus_text(&sample_snapshot()).unwrap();
        assert!(text.contains("# TYPE serve_jobs_accepted_total counter\n"));
        assert!(text.contains("serve_jobs_accepted_total 3\n"));
        assert!(text.contains("serve_queue_depth 2\n"));
        assert!(text.contains("modularity 0.4375\n"));
        // Buckets are cumulative: 12 → bucket 3 (le=15), two 900s →
        // bucket 9 (le=1023), 15000 → bucket 13 (le=16383).
        assert!(text.contains("serve_job_latency_ms_bucket{le=\"15\"} 1\n"));
        assert!(text.contains("serve_job_latency_ms_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("serve_job_latency_ms_bucket{le=\"16383\"} 4\n"));
        assert!(text.contains("serve_job_latency_ms_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("serve_job_latency_ms_sum 16812\n"));
        assert!(text.contains("serve_job_latency_ms_count 4\n"));
        assert!(text.contains("serve_job_latency_ms_p50 1023\n"));
        assert!(text.contains("serve_job_latency_ms_p99 16383\n"));
        // Help text rides along from the registry.
        assert!(text.contains("# HELP serve_queue_depth admission queue depth"));
    }

    #[test]
    fn unregistered_names_are_a_hard_error() {
        let r = MetricsRegistry::new();
        r.counter_add("serve.jobs_accepted", 1);
        r.counter_add("serve.bogus", 1);
        let err = prometheus_text(&r.snapshot()).unwrap_err();
        assert!(err.contains("serve.bogus"), "{err}");
        assert!(!err.contains("serve.jobs_accepted"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = prometheus_text(&sample_snapshot()).unwrap();
        let b = prometheus_text(&sample_snapshot()).unwrap();
        assert_eq!(a, b, "equal snapshots must render byte-identically");
    }

    #[test]
    fn parser_round_trips_rendered_samples() {
        let snap = sample_snapshot();
        let text = prometheus_text(&snap).unwrap();
        let samples = parse_prometheus_text(&text).unwrap();
        assert_eq!(samples["serve_jobs_accepted_total"], 3.0);
        assert_eq!(samples["serve_cache_hits_total"], 1.0);
        assert_eq!(samples["serve_queue_depth"], 2.0);
        assert_eq!(samples["modularity"], 0.4375);
        assert_eq!(samples["serve_job_latency_ms_count"], 4.0);
        assert_eq!(samples["serve_job_latency_ms_bucket{le=\"1023\"}"], 3.0);
        assert_eq!(samples["serve_job_latency_ms_p95"], 16383.0);
    }

    #[test]
    fn parser_rejects_garbage_and_skips_comments() {
        assert!(parse_prometheus_text("# just a comment\n\n")
            .unwrap()
            .is_empty());
        assert!(parse_prometheus_text("lonely_name\n").is_err());
        assert!(parse_prometheus_text("name not_a_number\n").is_err());
    }

    #[test]
    fn names_map_onto_prometheus_grammar() {
        assert_eq!(prometheus_name("serve.queue_depth"), "serve_queue_depth");
        assert_eq!(prometheus_name("wd_timeouts"), "wd_timeouts");
        assert_eq!(
            prometheus_name("ghost.delta.changed"),
            "ghost_delta_changed"
        );
    }
}
