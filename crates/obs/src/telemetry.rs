//! Per-(phase, iteration) algorithm telemetry.
//!
//! Spans and metrics answer "where did the time go"; telemetry answers
//! "what did the algorithm do": the modularity trajectory, how many
//! vertices moved, how fast the ET/ETC active set decays, how the
//! community structure coarsens, and how much ghost traffic each
//! iteration cost. One [`IterationRecord`] is appended per rank per
//! iteration by the sweep loop in `louvain-dist`, through the same
//! two-switch gate as every other recording site: one relaxed atomic
//! load when tracing is disabled, thread-local observer lookup when it
//! is on.
//!
//! Rank records merge into global [`TelemetryRow`]s keyed by
//! `(phase, iteration)`: globally-reduced fields (modularity, delta-Q,
//! moves) are identical on every rank and taken from the lowest one;
//! per-rank fields (active/owned-vertex counts, owned-community counts
//! and size histograms, ghost bytes) sum — each vertex and each
//! community is owned by exactly one rank, so the sums and merged
//! histograms are exact global values, not estimates.

use std::sync::Mutex;

use crate::metrics::Histogram;

/// What one rank recorded for one sweep iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Phase index (0-based) within the run.
    pub phase: u64,
    /// Iteration index (0-based) within the phase.
    pub iteration: u64,
    /// Global modularity after this iteration (lagged reduction; the
    /// all-reduce makes it identical on every rank).
    pub modularity: f64,
    /// `modularity - previous iteration's modularity` within the phase;
    /// `0.0` on the first iteration of a phase.
    pub delta_q: f64,
    /// Globally all-reduced moved-vertex count for this iteration.
    pub moves: u64,
    /// Vertices this rank actually swept (the ET/ETC active set).
    pub active: u64,
    /// Vertices this rank owns.
    pub vertices: u64,
    /// Non-empty communities this rank owns after the iteration.
    pub communities: u64,
    /// log2 histogram of this rank's owned non-empty community sizes.
    pub community_sizes: Histogram,
    /// Ghost-refresh bytes this rank sent during this iteration.
    pub ghost_bytes: u64,
}

/// Append-only per-rank sink; shared between the rank thread (via its
/// installed observer) and the collector that harvests it.
#[derive(Debug, Default)]
pub struct TelemetryLog {
    records: Mutex<Vec<IterationRecord>>,
}

impl TelemetryLog {
    pub fn push(&self, rec: IterationRecord) {
        self.records.lock().unwrap().push(rec);
    }

    pub fn drain(&self) -> Vec<IterationRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }
}

/// Record one iteration on the current rank's telemetry log and offer
/// it to the live progress merger if one is attached. No-op when every
/// recording consumer is off (one relaxed atomic load) or no observer
/// is installed.
pub fn record_iteration(rec: IterationRecord) {
    let flags = crate::span::recording_flags();
    if flags == 0 {
        return;
    }
    crate::span::with_observer(|o| {
        if let Some(p) = &o.progress {
            p.offer(o.rank, o.attempt, &rec);
        }
        if flags & crate::span::FLAG_TRACE != 0 {
            o.telemetry.push(rec);
        }
    });
}

/// One globally-merged telemetry row: per-rank fields summed, histograms
/// merged, ghost bytes kept per rank as well so imbalance stays visible.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRow {
    pub phase: u64,
    pub iteration: u64,
    pub modularity: f64,
    pub delta_q: f64,
    pub moves: u64,
    /// Global active-vertex count (sum over ranks).
    pub active: u64,
    /// Global vertex count at this phase's coarsening level.
    pub vertices: u64,
    /// Global non-empty community count (exact: one owner per community).
    pub communities: u64,
    /// Global community-size log2 histogram.
    pub community_sizes: Histogram,
    /// Ghost-refresh bytes per rank for this iteration, indexed by rank.
    pub ghost_bytes_per_rank: Vec<u64>,
}

impl TelemetryRow {
    /// Fraction of vertices the ET/ETC heuristics kept active.
    pub fn active_fraction(&self) -> f64 {
        if self.vertices == 0 {
            0.0
        } else {
            self.active as f64 / self.vertices as f64
        }
    }

    pub fn ghost_bytes_total(&self) -> u64 {
        self.ghost_bytes_per_rank.iter().sum()
    }
}

/// Merge per-rank iteration records (outer index = rank) into global
/// rows sorted by `(phase, iteration)`. Ranks that early-terminated out
/// of an iteration simply contribute nothing to it.
pub fn merge_ranks(per_rank: &[Vec<IterationRecord>]) -> Vec<TelemetryRow> {
    let mut rows: std::collections::BTreeMap<(u64, u64), TelemetryRow> =
        std::collections::BTreeMap::new();
    let num_ranks = per_rank.len();
    for (rank, recs) in per_rank.iter().enumerate() {
        for r in recs {
            let row = rows
                .entry((r.phase, r.iteration))
                .or_insert_with(|| TelemetryRow {
                    phase: r.phase,
                    iteration: r.iteration,
                    modularity: r.modularity,
                    delta_q: r.delta_q,
                    moves: r.moves,
                    active: 0,
                    vertices: 0,
                    communities: 0,
                    community_sizes: Histogram::default(),
                    ghost_bytes_per_rank: vec![0; num_ranks],
                });
            row.active += r.active;
            row.vertices += r.vertices;
            row.communities += r.communities;
            row.community_sizes.merge(&r.community_sizes);
            row.ghost_bytes_per_rank[rank] += r.ghost_bytes;
        }
    }
    rows.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(phase: u64, iteration: u64, active: u64, ghost: u64) -> IterationRecord {
        let mut sizes = Histogram::default();
        sizes.observe(4);
        IterationRecord {
            phase,
            iteration,
            modularity: 0.5 + phase as f64 / 10.0,
            delta_q: 0.01,
            moves: 7,
            active,
            vertices: 100,
            communities: 10,
            community_sizes: sizes,
            ghost_bytes: ghost,
        }
    }

    #[test]
    fn merge_sums_rank_fields_and_keeps_global_ones() {
        let per_rank = vec![
            vec![rec(0, 0, 80, 128), rec(0, 1, 40, 64)],
            vec![rec(0, 0, 90, 256)],
        ];
        let rows = merge_ranks(&per_rank);
        assert_eq!(rows.len(), 2);
        let first = &rows[0];
        assert_eq!((first.phase, first.iteration), (0, 0));
        assert_eq!(first.active, 170);
        assert_eq!(first.vertices, 200);
        assert_eq!(first.communities, 20);
        assert_eq!(first.community_sizes.count, 2);
        assert_eq!(first.ghost_bytes_per_rank, vec![128, 256]);
        assert_eq!(first.ghost_bytes_total(), 384);
        assert_eq!(first.moves, 7);
        assert!((first.active_fraction() - 0.85).abs() < 1e-12);
        // Rank 1 terminated before iteration 1: the row still merges.
        let second = &rows[1];
        assert_eq!(second.active, 40);
        assert_eq!(second.ghost_bytes_per_rank, vec![64, 0]);
    }

    #[test]
    fn record_iteration_is_inert_without_observer() {
        let _l = crate::span::tests::ENABLE_LOCK.lock().unwrap();
        crate::set_enabled(true);
        record_iteration(rec(0, 0, 1, 0)); // no observer installed: no-op
        crate::set_enabled(false);
    }
}
