//! Counters, gauges, and log2-bucket histograms.
//!
//! Each rank records into its own registry (no cross-rank contention);
//! snapshots are plain data that merge commutatively, so rank snapshots
//! can be combined either locally or by shipping them through the
//! communicator's collectives into one run-level view.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Summary of one gauge: last set value plus min/max/sum/count of all
/// sets, so merged snapshots keep distributional information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeStat {
    pub last: f64,
    pub min: f64,
    pub max: f64,
    pub sum: f64,
    pub count: u64,
}

impl GaugeStat {
    fn observe(&mut self, v: f64) {
        self.last = v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
    }

    fn merge(&mut self, other: &GaugeStat) {
        self.last = other.last; // arbitrary but deterministic: later snapshot wins
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Number of log2 buckets: bucket `i` counts values `v` with
/// `floor(log2(v)) == i` (bucket 0 also holds 0); the last bucket is a
/// catch-all for huge values.
pub const HIST_BUCKETS: usize = 40;

/// Fixed-size log2 histogram of non-negative integer observations
/// (bytes, degrees, message sizes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (63 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge of bucket `i`: the largest value it can hold (bucket 0
    /// holds `{0, 1}`, bucket `i >= 1` holds `[2^i, 2^(i+1))`; the last
    /// bucket is a catch-all).
    pub fn bucket_upper_edge(i: usize) -> u64 {
        if i >= HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) by walking the cumulative
    /// bucket counts and reporting the upper edge of the bucket the
    /// quantile lands in — a deterministic factor-of-two upper bound,
    /// which is the right direction for imbalance reporting (never
    /// understates the tail). Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_upper_edge(i);
            }
        }
        Self::bucket_upper_edge(HIST_BUCKETS - 1)
    }

    /// The (p50, p95, p99) triple reported in run artifacts.
    pub fn quantile_summary(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
        )
    }
}

/// Plain-data snapshot of a registry; merges commutatively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeStat>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges
                .entry(k.clone())
                .and_modify(|g| g.merge(v))
                .or_insert(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .and_modify(|h| h.merge(v))
                .or_insert_with(|| v.clone());
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

/// A per-rank metrics registry. Mutex-guarded maps: metric updates are
/// orders of magnitude rarer than span events (per-iteration, not
/// per-edge), so contention is not a concern and the lock keeps the
/// implementation dependency-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut m = self.inner.lock().unwrap();
        match m.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                m.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut m = self.inner.lock().unwrap();
        match m.gauges.get_mut(name) {
            Some(g) => g.observe(value),
            None => {
                m.gauges.insert(
                    name.to_string(),
                    GaugeStat {
                        last: value,
                        min: value,
                        max: value,
                        sum: value,
                        count: 1,
                    },
                );
            }
        }
    }

    pub fn hist_observe(&self, name: &str, value: u64) {
        let mut m = self.inner.lock().unwrap();
        match m.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                m.histograms.insert(name.to_string(), h);
            }
        }
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap().clone()
    }
}

// ---------------------------------------------------------------------------
// Thread-local helpers (record into the installed rank's registry)
// ---------------------------------------------------------------------------

/// Add to a named counter on the current rank's registry. No-op when
/// tracing is disabled or no observer is installed.
pub fn counter_add(name: &str, delta: u64) {
    if crate::enabled() {
        crate::span::with_observer(|o| o.metrics.counter_add(name, delta));
    }
}

/// Set a named gauge on the current rank's registry.
pub fn gauge_set(name: &str, value: f64) {
    if crate::enabled() {
        crate::span::with_observer(|o| o.metrics.gauge_set(name, value));
    }
}

/// Observe a value into a named histogram on the current rank's registry.
pub fn hist_observe(name: &str, value: u64) {
    if crate::enabled() {
        crate::span::with_observer(|o| o.metrics.hist_observe(name, value));
    }
}

/// Process peak resident set (`VmHWM` from `/proc/self/status`), in
/// bytes; 0 where unavailable (non-Linux, or a restricted procfs).
/// Lives here so every recording site of the `mem.peak_rss_bytes`
/// gauge (phase loop, slab ingest) reads the same number.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.counter_add("moves", 3);
        r.counter_add("moves", 4);
        r.counter_add("edges", 10);
        let s = r.snapshot();
        assert_eq!(s.counter("moves"), 7);
        assert_eq!(s.counter("edges"), 10);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn gauges_track_min_max_mean() {
        let r = MetricsRegistry::new();
        for v in [2.0, 8.0, 5.0] {
            r.gauge_set("q", v);
        }
        let g = r.snapshot().gauges["q"];
        assert_eq!(g.last, 5.0);
        assert_eq!(g.min, 2.0);
        assert_eq!(g.max, 8.0);
        assert_eq!(g.count, 3);
        assert!((g.mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        let r = MetricsRegistry::new();
        for v in [1u64, 2, 3, 1024] {
            r.hist_observe("bytes", v);
        }
        let h = &r.snapshot().histograms["bytes"];
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1030);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
    }

    #[test]
    fn percentiles_walk_cumulative_buckets() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        let r = MetricsRegistry::new();
        // 98 small values in bucket 0, one in bucket 4, one in bucket 10.
        for _ in 0..98 {
            r.hist_observe("v", 1);
        }
        r.hist_observe("v", 20);
        r.hist_observe("v", 1024);
        let h = &r.snapshot().histograms["v"];
        assert_eq!(h.percentile(0.50), 1);
        assert_eq!(h.percentile(0.98), 1);
        assert_eq!(h.percentile(0.99), Histogram::bucket_upper_edge(4));
        assert_eq!(h.percentile(1.0), Histogram::bucket_upper_edge(10));
        assert_eq!(
            h.quantile_summary(),
            (1, 1, Histogram::bucket_upper_edge(4))
        );
        assert_eq!(Histogram::bucket_upper_edge(0), 1);
        assert_eq!(Histogram::bucket_upper_edge(4), 31);
        assert_eq!(Histogram::bucket_upper_edge(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty: every quantile is 0 and the summary is all zeros.
        let empty = Histogram::default();
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(empty.percentile(q), 0);
        }
        assert_eq!(empty.quantile_summary(), (0, 0, 0));

        // Single sample: every quantile is that sample's bucket edge.
        let mut one = Histogram::default();
        one.observe(100); // bucket 6, upper edge 127
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(q), 127);
        }
        assert_eq!(one.quantile_summary(), (127, 127, 127));

        // All observations in one bucket: p50 == p99 == that edge,
        // regardless of count.
        let mut flat = Histogram::default();
        for _ in 0..1000 {
            flat.observe(5); // bucket 2, upper edge 7
        }
        assert_eq!(flat.quantile_summary(), (7, 7, 7));
        assert_eq!(flat.percentile(1e-9_f64.max(0.001)), 7);

        // Zero-valued observations land in bucket 0 (edge 1), and the
        // catch-all bucket reports u64::MAX.
        let mut zeros = Histogram::default();
        zeros.observe(0);
        assert_eq!(zeros.percentile(0.5), 1);
        let mut huge = Histogram::default();
        huge.observe(u64::MAX);
        assert_eq!(huge.percentile(0.5), u64::MAX);
    }

    #[test]
    fn snapshots_merge_commutatively() {
        let a = {
            let r = MetricsRegistry::new();
            r.counter_add("moves", 5);
            r.gauge_set("q", 0.4);
            r.hist_observe("bytes", 16);
            r.snapshot()
        };
        let b = {
            let r = MetricsRegistry::new();
            r.counter_add("moves", 7);
            r.counter_add("ghost_hits", 2);
            r.gauge_set("q", 0.6);
            r.hist_observe("bytes", 64);
            r.snapshot()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("moves"), 12);
        assert_eq!(ab.counter("ghost_hits"), 2);
        assert_eq!(ab.gauges["q"].min, 0.4);
        assert_eq!(ab.gauges["q"].max, 0.6);
        assert_eq!(ab.histograms["bytes"].count, 2);
        // Order-independent except `last`, which takes the merged-in value.
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.histograms, ba.histograms);
        assert_eq!(ab.gauges["q"].sum, ba.gauges["q"].sum);
    }
}
