//! A minimal JSON value model with a writer and a strict parser.
//!
//! The tracing crate is deliberately dependency-free, so the exporters
//! build documents through this module instead of serde. The parser
//! exists so exports can be round-trip tested (and run reports diffed)
//! without external tooling.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (ordering keeps exports deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric member as u64 (exact for integers below 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialize compactly (no insignificant whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                })
            }
        }
    }

    /// Parse a JSON document. The whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(close);
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_scalars() {
        for (v, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::Num(3.0), "3"),
            (Json::Num(-2.5), "-2.5"),
            (Json::str("hi"), "\"hi\""),
        ] {
            assert_eq!(v.to_string_compact(), text);
            assert_eq!(Json::parse(text).unwrap(), v);
        }
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let n = 4_503_599_627_370_495u64; // 2^52 - 1
        let v = Json::Num(n as f64);
        let text = v.to_string_compact();
        assert_eq!(text, n.to_string());
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" back\\ nl\n tab\t ctrl\u{1} unicode é 🦀";
        let text = Json::str(s).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(
            Json::parse("\"\\ud83e\\udd80\"").unwrap().as_str(),
            Some("🦀")
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            ("b".into(), Json::Obj(vec![("c".into(), Json::Bool(false))])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"x": 3, "s": "t", "l": [1,2]}"#).unwrap();
        assert_eq!(v.get("x").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            v.get("l").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\\q\"", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn nan_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn whitespace_everywhere_is_accepted() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn depth_limit_rejects_bombs() {
        let bomb = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&bomb).is_err());
    }
}
