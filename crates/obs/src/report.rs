//! The machine-readable run artifact: everything one distributed run
//! produced — configuration, quality, wall/modeled time, per-step and
//! per-rank traffic totals, merged metrics, and span rollups — in one
//! JSON-serializable struct.
//!
//! This crate is dependency-free, so the report holds plain data; the
//! glue that lifts `louvain_comm::StatsSnapshot` values into these
//! fields lives in `louvain-dist` (which sees both crates).

use crate::collector::SpanRollup;
use crate::json::{Json, JsonError};
use crate::metrics::{GaugeStat, Histogram, MetricsSnapshot, HIST_BUCKETS};

/// Report schema version (bump on breaking field changes).
pub const RUN_REPORT_VERSION: u32 = 1;

/// Traffic attributed to one algorithmic communication step, summed
/// across ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTotal {
    /// Step label (`ghost_refresh`, `community_pull`, `delta_push`,
    /// `reduction`, `other`).
    pub step: String,
    pub bytes: u64,
    pub messages: u64,
    /// Idle wall nanoseconds ranks spent blocked inside this step
    /// (summed across ranks; 0 in pre-wait-split artifacts).
    pub wait_ns: u64,
}

/// One rank's traffic totals plus its trace bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct RankTotals {
    pub rank: usize,
    pub p2p_messages: u64,
    pub p2p_bytes: u64,
    pub collective_calls: u64,
    pub collective_bytes: u64,
    /// Modeled (α-β) communication seconds on this rank.
    pub modeled_comm_seconds: f64,
    /// Per-step message counts, indexed like `CommStep::index()`.
    pub step_messages: Vec<u64>,
    /// Per-step byte counts, indexed like `CommStep::index()`.
    pub step_bytes: Vec<u64>,
    /// Idle wall nanoseconds this rank spent blocked in receives and
    /// collective fill-waits (0 in pre-wait-split artifacts).
    pub wait_ns: u64,
    pub events_recorded: u64,
    pub events_dropped: u64,
}

/// Wall-clock attribution for one (rank, phase) cell, derived from the
/// traced span tree: the phase span is the window, comm-step spans
/// within it split into wait (blocked) and transfer (bytes moving)
/// portions, rebuild spans are explicit, and compute is the residual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseProfileRow {
    pub rank: usize,
    pub phase: u64,
    pub compute_ns: u64,
    pub transfer_ns: u64,
    pub wait_ns: u64,
    pub rebuild_ns: u64,
    /// Wall duration of the phase span; the four categories above sum
    /// to exactly this value by construction.
    pub total_ns: u64,
}

/// One matched send/recv edge of the cross-rank happens-before graph:
/// a Lamport-stamped envelope observed at both endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageEdge {
    pub src: usize,
    pub dst: usize,
    /// Communication step label the sender charged the bytes to.
    pub step: String,
    /// Sender's Lamport clock at send time (unique per src).
    pub lamport: u64,
    pub bytes: u64,
    pub send_ts_ns: u64,
    pub recv_ts_ns: u64,
    /// Modeled α-β transfer cost of this edge, in nanoseconds — the
    /// calibration target for the `lens crit` α-β fit.
    pub modeled_ns: u64,
}

/// Modeled-seconds breakdown in the paper's Section V-A categories.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModeledBreakdown {
    pub compute: f64,
    pub comm: f64,
    pub reduce: f64,
    pub rebuild: f64,
}

impl ModeledBreakdown {
    pub fn total(&self) -> f64 {
        self.compute + self.comm + self.reduce + self.rebuild
    }

    /// (compute, comm, reduce, rebuild) as fractions of the total — the
    /// numbers to diff against the paper's ~22/34/40 split.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (
                self.compute / t,
                self.comm / t,
                self.reduce / t,
                self.rebuild / t,
            )
        }
    }
}

/// Injected-fault totals summed across ranks (all zero on clean runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTotals {
    pub drops: u64,
    pub delays: u64,
    pub duplicates: u64,
    pub truncations: u64,
    pub retries: u64,
}

impl FaultTotals {
    pub fn any(&self) -> bool {
        self.drops + self.delays + self.duplicates + self.truncations + self.retries > 0
    }
}

/// One hung-rank declaration absorbed by the resilient driver.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HungEvent {
    /// Rank declared hung.
    pub rank: usize,
    /// Rank whose watchdog raised the declaration (equal to `rank` for
    /// a self-declaration).
    pub detector: usize,
    /// Fault epoch (phase) and operation index at the declaration.
    pub phase: u64,
    pub op: u64,
    /// Communication step the detector was blocked in.
    pub step: String,
    /// How long the detector had been waiting, in milliseconds.
    pub waited_ms: u64,
}

/// One rank's health counters (watchdog ladder + fault protocol).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankHealth {
    pub rank: usize,
    /// Retransmissions of injected message faults on this rank.
    pub retries: u64,
    /// Watchdog deadline expiries while this rank was blocked.
    pub wd_timeouts: u64,
    /// Deadline extensions this rank granted to stale peers.
    pub wd_retries: u64,
    /// Extensions granted to live-but-slow peers (stragglers).
    pub wd_stragglers: u64,
    /// Total time this rank spent in backoff sleeps.
    pub backoff_seconds: f64,
    /// Envelopes this rank discarded on a checksum mismatch.
    pub checksum_rejects: u64,
    /// Retransmissions per communication step, indexed like
    /// `CommStep::index()` (the per-step retry histogram).
    pub step_retries: Vec<u64>,
}

/// Rank-health section of the report: watchdog activity, hung-rank
/// events, and slowest-rank attribution (all zero/empty on healthy
/// runs with the watchdog idle).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthTotals {
    /// Injected stall events across ranks.
    pub stalls: u64,
    /// Injected flaky-burst drops across ranks.
    pub bursts: u64,
    /// Injected payload corruptions across ranks.
    pub corruptions: u64,
    /// Corrupted envelopes caught by the receiver checksum.
    pub checksum_rejects: u64,
    pub wd_timeouts: u64,
    pub wd_retries: u64,
    pub wd_stragglers: u64,
    pub backoff_seconds: f64,
    /// Rank with the largest modeled communication time (straggler
    /// attribution); `None` when the run had no ranks.
    pub slowest_rank: Option<usize>,
    /// That rank's modeled communication seconds.
    pub slowest_rank_seconds: f64,
    pub per_rank: Vec<RankHealth>,
    /// Hung-rank declarations, in the order they were raised.
    pub hung_events: Vec<HungEvent>,
}

impl HealthTotals {
    /// Did the watchdog or the fault protocol do anything at all?
    pub fn any(&self) -> bool {
        self.stalls
            + self.bursts
            + self.corruptions
            + self.checksum_rejects
            + self.wd_timeouts
            + self.wd_retries
            + self.wd_stragglers
            + self.hung_events.len() as u64
            > 0
    }
}

/// The complete run artifact. See module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    pub graph: String,
    pub vertices: u64,
    pub edges: u64,
    pub ranks: usize,
    /// Algorithm variant label (e.g. `full`, `delta`, `delta+et(0.25)`).
    pub variant: String,
    pub threads_per_rank: usize,
    pub modularity: f64,
    pub num_communities: u64,
    pub phases: u64,
    pub iterations: u64,
    pub wall_seconds: f64,
    /// Phase index the run resumed from when restarted off a checkpoint
    /// (`None` on uninterrupted runs). The cumulative totals above cover
    /// the whole logical run: checkpointed counters are re-absorbed on
    /// resume, so a recovered run reports the same per-step traffic as
    /// an uninterrupted one (modulo the `checkpoint` step itself).
    pub resumed_from_phase: Option<u64>,
    /// Crash recoveries the resilient driver performed (0 = clean run).
    pub recoveries: u64,
    /// Injected-fault totals summed across ranks.
    pub faults: FaultTotals,
    /// Rank-health section (watchdog, hung events, slowest rank).
    pub health: HealthTotals,
    pub modeled: ModeledBreakdown,
    /// Cross-rank traffic per communication step.
    pub step_totals: Vec<StepTotal>,
    pub total_bytes: u64,
    pub total_messages: u64,
    pub per_rank: Vec<RankTotals>,
    /// Metrics merged across all ranks.
    pub metrics: MetricsSnapshot,
    /// Wall/modeled rollup per span name (descending wall time).
    pub spans: Vec<SpanRollup>,
    /// Per-(rank, phase) wall attribution (empty on untraced runs and
    /// pre-causal-profiling artifacts).
    pub phase_profile: Vec<PhaseProfileRow>,
    /// Matched cross-rank message edges (empty on untraced runs and
    /// pre-causal-profiling artifacts).
    pub messages: Vec<MessageEdge>,
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num_u(v: u64) -> Json {
    Json::Num(v as f64)
}

pub(crate) fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    obj(vec![
        (
            "counters",
            Json::Obj(
                m.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), num_u(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                m.gauges
                    .iter()
                    .map(|(k, g)| {
                        (
                            k.clone(),
                            obj(vec![
                                ("last", Json::Num(g.last)),
                                ("min", Json::Num(g.min)),
                                ("max", Json::Num(g.max)),
                                ("sum", Json::Num(g.sum)),
                                ("count", num_u(g.count)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                m.histograms
                    .iter()
                    .map(|(k, h)| {
                        let top = h.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
                        let (p50, p95, p99) = h.quantile_summary();
                        (
                            k.clone(),
                            obj(vec![
                                ("count", num_u(h.count)),
                                ("sum", num_u(h.sum)),
                                // Derived on encode (bucket upper edges);
                                // from_json rebuilds them from the buckets.
                                ("p50", num_u(p50)),
                                ("p95", num_u(p95)),
                                ("p99", num_u(p99)),
                                (
                                    "log2_buckets",
                                    Json::Arr(h.buckets[..top].iter().map(|&b| num_u(b)).collect()),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

impl RunReport {
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("run_report_version", num_u(RUN_REPORT_VERSION as u64)),
            ("graph", Json::str(self.graph.clone())),
            ("vertices", num_u(self.vertices)),
            ("edges", num_u(self.edges)),
            ("ranks", num_u(self.ranks as u64)),
            ("variant", Json::str(self.variant.clone())),
            ("threads_per_rank", num_u(self.threads_per_rank as u64)),
            ("modularity", Json::Num(self.modularity)),
            ("num_communities", num_u(self.num_communities)),
            ("phases", num_u(self.phases)),
            ("iterations", num_u(self.iterations)),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            (
                "resumed_from_phase",
                match self.resumed_from_phase {
                    Some(p) => num_u(p),
                    None => Json::Null,
                },
            ),
            ("recoveries", num_u(self.recoveries)),
            (
                "faults",
                obj(vec![
                    ("drops", num_u(self.faults.drops)),
                    ("delays", num_u(self.faults.delays)),
                    ("duplicates", num_u(self.faults.duplicates)),
                    ("truncations", num_u(self.faults.truncations)),
                    ("retries", num_u(self.faults.retries)),
                ]),
            ),
            (
                "health",
                obj(vec![
                    ("stalls", num_u(self.health.stalls)),
                    ("bursts", num_u(self.health.bursts)),
                    ("corruptions", num_u(self.health.corruptions)),
                    ("checksum_rejects", num_u(self.health.checksum_rejects)),
                    ("wd_timeouts", num_u(self.health.wd_timeouts)),
                    ("wd_retries", num_u(self.health.wd_retries)),
                    ("wd_stragglers", num_u(self.health.wd_stragglers)),
                    ("backoff_seconds", Json::Num(self.health.backoff_seconds)),
                    (
                        "slowest_rank",
                        match self.health.slowest_rank {
                            Some(r) => num_u(r as u64),
                            None => Json::Null,
                        },
                    ),
                    (
                        "slowest_rank_seconds",
                        Json::Num(self.health.slowest_rank_seconds),
                    ),
                    (
                        "per_rank",
                        Json::Arr(
                            self.health
                                .per_rank
                                .iter()
                                .map(|r| {
                                    obj(vec![
                                        ("rank", num_u(r.rank as u64)),
                                        ("retries", num_u(r.retries)),
                                        ("wd_timeouts", num_u(r.wd_timeouts)),
                                        ("wd_retries", num_u(r.wd_retries)),
                                        ("wd_stragglers", num_u(r.wd_stragglers)),
                                        ("backoff_seconds", Json::Num(r.backoff_seconds)),
                                        ("checksum_rejects", num_u(r.checksum_rejects)),
                                        (
                                            "step_retries",
                                            Json::Arr(
                                                r.step_retries.iter().map(|&v| num_u(v)).collect(),
                                            ),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "hung_events",
                        Json::Arr(
                            self.health
                                .hung_events
                                .iter()
                                .map(|e| {
                                    obj(vec![
                                        ("rank", num_u(e.rank as u64)),
                                        ("detector", num_u(e.detector as u64)),
                                        ("phase", num_u(e.phase)),
                                        ("op", num_u(e.op)),
                                        ("step", Json::str(e.step.clone())),
                                        ("waited_ms", num_u(e.waited_ms)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("modeled", {
                let (fc, fm, fr, fb) = self.modeled.fractions();
                obj(vec![
                    ("compute_seconds", Json::Num(self.modeled.compute)),
                    ("comm_seconds", Json::Num(self.modeled.comm)),
                    ("reduce_seconds", Json::Num(self.modeled.reduce)),
                    ("rebuild_seconds", Json::Num(self.modeled.rebuild)),
                    ("total_seconds", Json::Num(self.modeled.total())),
                    ("compute_fraction", Json::Num(fc)),
                    ("comm_fraction", Json::Num(fm)),
                    ("reduce_fraction", Json::Num(fr)),
                    ("rebuild_fraction", Json::Num(fb)),
                ])
            }),
            (
                "step_totals",
                Json::Arr(
                    self.step_totals
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("step", Json::str(s.step.clone())),
                                ("bytes", num_u(s.bytes)),
                                ("messages", num_u(s.messages)),
                                ("wait_ns", num_u(s.wait_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_bytes", num_u(self.total_bytes)),
            ("total_messages", num_u(self.total_messages)),
            (
                "per_rank",
                Json::Arr(
                    self.per_rank
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("rank", num_u(r.rank as u64)),
                                ("p2p_messages", num_u(r.p2p_messages)),
                                ("p2p_bytes", num_u(r.p2p_bytes)),
                                ("collective_calls", num_u(r.collective_calls)),
                                ("collective_bytes", num_u(r.collective_bytes)),
                                ("modeled_comm_seconds", Json::Num(r.modeled_comm_seconds)),
                                (
                                    "step_messages",
                                    Json::Arr(r.step_messages.iter().map(|&v| num_u(v)).collect()),
                                ),
                                (
                                    "step_bytes",
                                    Json::Arr(r.step_bytes.iter().map(|&v| num_u(v)).collect()),
                                ),
                                ("wait_ns", num_u(r.wait_ns)),
                                ("events_recorded", num_u(r.events_recorded)),
                                ("events_dropped", num_u(r.events_dropped)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics", metrics_to_json(&self.metrics)),
            (
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            obj(vec![
                                ("name", Json::str(s.name.clone())),
                                ("count", num_u(s.count)),
                                ("wall_seconds", Json::Num(s.wall_seconds)),
                                ("modeled_seconds", Json::Num(s.modeled_seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "phase_profile",
                Json::Arr(
                    self.phase_profile
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("rank", num_u(p.rank as u64)),
                                ("phase", num_u(p.phase)),
                                ("compute_ns", num_u(p.compute_ns)),
                                ("transfer_ns", num_u(p.transfer_ns)),
                                ("wait_ns", num_u(p.wait_ns)),
                                ("rebuild_ns", num_u(p.rebuild_ns)),
                                ("total_ns", num_u(p.total_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "messages",
                Json::Arr(
                    self.messages
                        .iter()
                        .map(|m| {
                            obj(vec![
                                ("src", num_u(m.src as u64)),
                                ("dst", num_u(m.dst as u64)),
                                ("step", Json::str(m.step.clone())),
                                ("lamport", num_u(m.lamport)),
                                ("bytes", num_u(m.bytes)),
                                ("send_ts_ns", num_u(m.send_ts_ns)),
                                ("recv_ts_ns", num_u(m.recv_ts_ns)),
                                ("modeled_ns", num_u(m.modeled_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed JSON document (the on-disk artifact format).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parse a report back from its JSON text (round-trip testing, and
    /// diffing committed artifacts).
    pub fn from_json_str(text: &str) -> Result<RunReport, String> {
        let doc = Json::parse(text).map_err(|e: JsonError| e.to_string())?;
        Self::from_json(&doc)
    }

    pub fn from_json(doc: &Json) -> Result<RunReport, String> {
        fn get<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
            doc.get(key).ok_or_else(|| format!("missing field `{key}`"))
        }
        fn f(doc: &Json, key: &str) -> Result<f64, String> {
            get(doc, key)?
                .as_f64()
                .ok_or_else(|| format!("field `{key}` is not a number"))
        }
        fn u(doc: &Json, key: &str) -> Result<u64, String> {
            get(doc, key)?
                .as_u64()
                .ok_or_else(|| format!("field `{key}` is not a u64"))
        }
        fn s(doc: &Json, key: &str) -> Result<String, String> {
            Ok(get(doc, key)?
                .as_str()
                .ok_or_else(|| format!("field `{key}` is not a string"))?
                .to_string())
        }
        fn u_arr(doc: &Json, key: &str) -> Result<Vec<u64>, String> {
            get(doc, key)?
                .as_arr()
                .ok_or_else(|| format!("field `{key}` is not an array"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| format!("`{key}` element is not a u64"))
                })
                .collect()
        }

        let version = u(doc, "run_report_version")?;
        if version != RUN_REPORT_VERSION as u64 {
            return Err(format!("unsupported run_report_version {version}"));
        }
        let modeled_doc = get(doc, "modeled")?;
        let metrics_doc = get(doc, "metrics")?;

        let mut metrics = MetricsSnapshot::default();
        for (k, v) in get(metrics_doc, "counters")?.as_obj().unwrap_or(&[]) {
            metrics.counters.insert(
                k.clone(),
                v.as_u64().ok_or_else(|| format!("counter `{k}` not u64"))?,
            );
        }
        for (k, v) in get(metrics_doc, "gauges")?.as_obj().unwrap_or(&[]) {
            metrics.gauges.insert(
                k.clone(),
                GaugeStat {
                    last: f(v, "last")?,
                    min: f(v, "min")?,
                    max: f(v, "max")?,
                    sum: f(v, "sum")?,
                    count: u(v, "count")?,
                },
            );
        }
        for (k, v) in get(metrics_doc, "histograms")?.as_obj().unwrap_or(&[]) {
            let mut h = Histogram {
                count: u(v, "count")?,
                sum: u(v, "sum")?,
                ..Default::default()
            };
            for (i, b) in u_arr(v, "log2_buckets")?.into_iter().enumerate() {
                if i < HIST_BUCKETS {
                    h.buckets[i] = b;
                }
            }
            metrics.histograms.insert(k.clone(), h);
        }

        Ok(RunReport {
            graph: s(doc, "graph")?,
            vertices: u(doc, "vertices")?,
            edges: u(doc, "edges")?,
            ranks: u(doc, "ranks")? as usize,
            variant: s(doc, "variant")?,
            threads_per_rank: u(doc, "threads_per_rank")? as usize,
            modularity: f(doc, "modularity")?,
            num_communities: u(doc, "num_communities")?,
            phases: u(doc, "phases")?,
            iterations: u(doc, "iterations")?,
            wall_seconds: f(doc, "wall_seconds")?,
            // Resilience fields arrived after version 1 shipped; parse
            // them leniently so pre-resilience artifacts still load.
            resumed_from_phase: doc.get("resumed_from_phase").and_then(Json::as_u64),
            recoveries: doc.get("recoveries").and_then(Json::as_u64).unwrap_or(0),
            faults: match doc.get("faults") {
                Some(fd) => FaultTotals {
                    drops: u(fd, "drops")?,
                    delays: u(fd, "delays")?,
                    duplicates: u(fd, "duplicates")?,
                    truncations: u(fd, "truncations")?,
                    retries: u(fd, "retries")?,
                },
                None => FaultTotals::default(),
            },
            // The health section also arrived after version 1, and its
            // counter set has grown since (the wd_* ladder landed with
            // checkpoint format v2). Parse every field leniently so a
            // report from any intermediate build still loads: a missing
            // counter means the build that wrote it had nothing to count.
            health: match doc.get("health") {
                Some(hd) => {
                    let lu = |d: &Json, key: &str| d.get(key).and_then(Json::as_u64).unwrap_or(0);
                    let lf = |d: &Json, key: &str| d.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                    HealthTotals {
                        stalls: lu(hd, "stalls"),
                        bursts: lu(hd, "bursts"),
                        corruptions: lu(hd, "corruptions"),
                        checksum_rejects: lu(hd, "checksum_rejects"),
                        wd_timeouts: lu(hd, "wd_timeouts"),
                        wd_retries: lu(hd, "wd_retries"),
                        wd_stragglers: lu(hd, "wd_stragglers"),
                        backoff_seconds: lf(hd, "backoff_seconds"),
                        slowest_rank: hd
                            .get("slowest_rank")
                            .and_then(Json::as_u64)
                            .map(|r| r as usize),
                        slowest_rank_seconds: lf(hd, "slowest_rank_seconds"),
                        per_rank: hd
                            .get("per_rank")
                            .and_then(Json::as_arr)
                            .unwrap_or(&[])
                            .iter()
                            .map(|r| RankHealth {
                                rank: lu(r, "rank") as usize,
                                retries: lu(r, "retries"),
                                wd_timeouts: lu(r, "wd_timeouts"),
                                wd_retries: lu(r, "wd_retries"),
                                wd_stragglers: lu(r, "wd_stragglers"),
                                backoff_seconds: lf(r, "backoff_seconds"),
                                checksum_rejects: lu(r, "checksum_rejects"),
                                step_retries: r
                                    .get("step_retries")
                                    .and_then(Json::as_arr)
                                    .map(|a| a.iter().filter_map(Json::as_u64).collect())
                                    .unwrap_or_default(),
                            })
                            .collect(),
                        hung_events: hd
                            .get("hung_events")
                            .and_then(Json::as_arr)
                            .unwrap_or(&[])
                            .iter()
                            .map(|e| {
                                Ok(HungEvent {
                                    rank: lu(e, "rank") as usize,
                                    detector: lu(e, "detector") as usize,
                                    phase: lu(e, "phase"),
                                    op: lu(e, "op"),
                                    step: s(e, "step")?,
                                    waited_ms: lu(e, "waited_ms"),
                                })
                            })
                            .collect::<Result<_, String>>()?,
                    }
                }
                None => HealthTotals::default(),
            },
            modeled: ModeledBreakdown {
                compute: f(modeled_doc, "compute_seconds")?,
                comm: f(modeled_doc, "comm_seconds")?,
                reduce: f(modeled_doc, "reduce_seconds")?,
                rebuild: f(modeled_doc, "rebuild_seconds")?,
            },
            step_totals: get(doc, "step_totals")?
                .as_arr()
                .ok_or("`step_totals` is not an array")?
                .iter()
                .map(|t| {
                    Ok(StepTotal {
                        step: s(t, "step")?,
                        bytes: u(t, "bytes")?,
                        messages: u(t, "messages")?,
                        // Lenient: pre-wait-split artifacts lack it.
                        wait_ns: t.get("wait_ns").and_then(Json::as_u64).unwrap_or(0),
                    })
                })
                .collect::<Result<_, String>>()?,
            total_bytes: u(doc, "total_bytes")?,
            total_messages: u(doc, "total_messages")?,
            per_rank: get(doc, "per_rank")?
                .as_arr()
                .ok_or("`per_rank` is not an array")?
                .iter()
                .map(|r| {
                    Ok(RankTotals {
                        rank: u(r, "rank")? as usize,
                        p2p_messages: u(r, "p2p_messages")?,
                        p2p_bytes: u(r, "p2p_bytes")?,
                        collective_calls: u(r, "collective_calls")?,
                        collective_bytes: u(r, "collective_bytes")?,
                        modeled_comm_seconds: f(r, "modeled_comm_seconds")?,
                        step_messages: u_arr(r, "step_messages")?,
                        step_bytes: u_arr(r, "step_bytes")?,
                        wait_ns: r.get("wait_ns").and_then(Json::as_u64).unwrap_or(0),
                        events_recorded: u(r, "events_recorded")?,
                        events_dropped: u(r, "events_dropped")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            metrics,
            spans: get(doc, "spans")?
                .as_arr()
                .ok_or("`spans` is not an array")?
                .iter()
                .map(|sp| {
                    Ok(SpanRollup {
                        name: s(sp, "name")?,
                        count: u(sp, "count")?,
                        wall_seconds: f(sp, "wall_seconds")?,
                        modeled_seconds: f(sp, "modeled_seconds")?,
                    })
                })
                .collect::<Result<_, String>>()?,
            // Causal-profiling sections arrived after version 1 shipped;
            // parse them leniently so earlier artifacts still load (an
            // absent section means the build that wrote the report could
            // not have recorded message edges or phase profiles).
            phase_profile: doc
                .get("phase_profile")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|p| {
                    let lu = |d: &Json, key: &str| d.get(key).and_then(Json::as_u64).unwrap_or(0);
                    PhaseProfileRow {
                        rank: lu(p, "rank") as usize,
                        phase: lu(p, "phase"),
                        compute_ns: lu(p, "compute_ns"),
                        transfer_ns: lu(p, "transfer_ns"),
                        wait_ns: lu(p, "wait_ns"),
                        rebuild_ns: lu(p, "rebuild_ns"),
                        total_ns: lu(p, "total_ns"),
                    }
                })
                .collect(),
            messages: doc
                .get("messages")
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|m| {
                    let lu = |d: &Json, key: &str| d.get(key).and_then(Json::as_u64).unwrap_or(0);
                    Ok(MessageEdge {
                        src: lu(m, "src") as usize,
                        dst: lu(m, "dst") as usize,
                        step: s(m, "step")?,
                        lamport: lu(m, "lamport"),
                        bytes: lu(m, "bytes"),
                        send_ts_ns: lu(m, "send_ts_ns"),
                        recv_ts_ns: lu(m, "recv_ts_ns"),
                        modeled_ns: lu(m, "modeled_ns"),
                    })
                })
                .collect::<Result<_, String>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut metrics = MetricsSnapshot::default();
        metrics.counters.insert("sweep.moves".into(), 42);
        metrics.gauges.insert(
            "modularity".into(),
            GaugeStat {
                last: 0.41,
                min: 0.1,
                max: 0.41,
                sum: 0.92,
                count: 3,
            },
        );
        let mut h = Histogram::default();
        h.observe(100);
        h.observe(4096);
        metrics.histograms.insert("msg_bytes".into(), h);
        RunReport {
            graph: "ssca2-1e4".into(),
            vertices: 10_000,
            edges: 62_000,
            ranks: 8,
            variant: "delta+et(0.25)".into(),
            threads_per_rank: 1,
            modularity: 0.412345,
            num_communities: 97,
            phases: 3,
            iterations: 14,
            wall_seconds: 1.25,
            resumed_from_phase: Some(2),
            recoveries: 1,
            faults: FaultTotals {
                drops: 3,
                delays: 1,
                duplicates: 0,
                truncations: 2,
                retries: 5,
            },
            health: HealthTotals {
                stalls: 2,
                bursts: 4,
                corruptions: 1,
                checksum_rejects: 1,
                wd_timeouts: 3,
                wd_retries: 2,
                wd_stragglers: 2,
                backoff_seconds: 0.004,
                slowest_rank: Some(5),
                slowest_rank_seconds: 0.5,
                per_rank: vec![RankHealth {
                    rank: 0,
                    retries: 5,
                    wd_timeouts: 3,
                    wd_retries: 2,
                    wd_stragglers: 2,
                    backoff_seconds: 0.004,
                    checksum_rejects: 1,
                    step_retries: vec![3, 0, 0, 2, 0],
                }],
                hung_events: vec![HungEvent {
                    rank: 3,
                    detector: 0,
                    phase: 2,
                    op: 7,
                    step: "ghost_refresh".into(),
                    waited_ms: 480,
                }],
            },
            modeled: ModeledBreakdown {
                compute: 2.2,
                comm: 3.4,
                reduce: 4.0,
                rebuild: 0.4,
            },
            step_totals: vec![
                StepTotal {
                    step: "ghost_refresh".into(),
                    bytes: 1_000,
                    messages: 24,
                    wait_ns: 1_200,
                },
                StepTotal {
                    step: "reduction".into(),
                    bytes: 640,
                    messages: 80,
                    wait_ns: 300,
                },
            ],
            total_bytes: 1_640,
            total_messages: 104,
            per_rank: vec![RankTotals {
                rank: 0,
                p2p_messages: 12,
                p2p_bytes: 500,
                collective_calls: 10,
                collective_bytes: 80,
                modeled_comm_seconds: 0.42,
                step_messages: vec![12, 0, 0, 10, 0],
                step_bytes: vec![500, 0, 0, 80, 0],
                wait_ns: 1_500,
                events_recorded: 321,
                events_dropped: 0,
            }],
            metrics,
            spans: vec![SpanRollup {
                name: "phase".into(),
                count: 3,
                wall_seconds: 1.1,
                modeled_seconds: 9.9,
            }],
            phase_profile: vec![PhaseProfileRow {
                rank: 0,
                phase: 0,
                compute_ns: 700,
                transfer_ns: 200,
                wait_ns: 80,
                rebuild_ns: 20,
                total_ns: 1_000,
            }],
            messages: vec![MessageEdge {
                src: 0,
                dst: 1,
                step: "ghost_refresh".into(),
                lamport: 7,
                bytes: 128,
                send_ts_ns: 10_000,
                recv_ts_ns: 12_000,
                modeled_ns: 1_314,
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let text = r.to_json_string();
        let back = RunReport::from_json_str(&text).expect("parse back");
        assert_eq!(back, r);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = ModeledBreakdown {
            compute: 2.2,
            comm: 3.4,
            reduce: 4.0,
            rebuild: 0.4,
        };
        let (c, o, r, b) = m.fractions();
        assert!((c + o + r + b - 1.0).abs() < 1e-12);
        assert!((c - 0.22).abs() < 1e-12);
        assert!((o - 0.34).abs() < 1e-12);
        assert!((r - 0.40).abs() < 1e-12);
    }

    #[test]
    fn zero_breakdown_has_zero_fractions() {
        assert_eq!(
            ModeledBreakdown::default().fractions(),
            (0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn resilience_fields_parse_leniently_when_absent() {
        // Reports written before the resilience subsystem carry neither
        // `resumed_from_phase` nor `recoveries` nor `faults`; they must
        // still load, defaulting to a clean uninterrupted run.
        let mut doc = sample().to_json();
        if let Json::Obj(members) = &mut doc {
            members.retain(|(k, _)| {
                k != "resumed_from_phase" && k != "recoveries" && k != "faults" && k != "health"
            });
        }
        let back = RunReport::from_json(&doc).expect("lenient parse");
        assert_eq!(back.resumed_from_phase, None);
        assert_eq!(back.recoveries, 0);
        assert_eq!(back.faults, FaultTotals::default());
        assert!(!back.faults.any());
        assert_eq!(back.health, HealthTotals::default());
        assert!(!back.health.any());
    }

    #[test]
    fn causal_sections_parse_leniently_when_absent() {
        // Pre-causal-profiling artifacts lack wait_ns / phase_profile /
        // messages; they must load as zero-wait, section-free reports.
        let mut doc = sample().to_json();
        if let Json::Obj(members) = &mut doc {
            members.retain(|(k, _)| k != "phase_profile" && k != "messages");
            for (k, v) in members.iter_mut() {
                if k == "step_totals" || k == "per_rank" {
                    if let Json::Arr(rows) = v {
                        for row in rows {
                            if let Json::Obj(fields) = row {
                                fields.retain(|(f, _)| f != "wait_ns");
                            }
                        }
                    }
                }
            }
        }
        let back = RunReport::from_json(&doc).expect("lenient parse");
        assert!(back.phase_profile.is_empty());
        assert!(back.messages.is_empty());
        assert!(back.step_totals.iter().all(|s| s.wait_ns == 0));
        assert!(back.per_rank.iter().all(|r| r.wait_ns == 0));
    }

    #[test]
    fn health_section_round_trips_with_hung_events() {
        let r = sample();
        assert!(r.health.any());
        let back = RunReport::from_json_str(&r.to_json_string()).expect("parse back");
        assert_eq!(back.health, r.health);
        assert_eq!(back.health.hung_events[0].rank, 3);
        assert_eq!(back.health.slowest_rank, Some(5));
    }

    #[test]
    fn from_json_rejects_missing_fields_and_bad_versions() {
        assert!(RunReport::from_json_str("{}").is_err());
        let mut r = sample().to_json();
        if let Json::Obj(members) = &mut r {
            members[0].1 = Json::Num(999.0);
        }
        assert!(RunReport::from_json(&r).unwrap_err().contains("version"));
    }
}
