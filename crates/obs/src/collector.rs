//! The per-job collector: one event ring and metrics registry per rank,
//! all stamped against a single shared epoch so rank timelines align.
//!
//! Usage: build one [`Collector`] before spawning rank threads, clone it
//! (via `Arc`) into each rank closure, call [`Collector::install`] at
//! rank start (holding the returned guard for the rank's lifetime), and
//! call [`Collector::finish`] after all ranks joined to harvest a
//! [`TraceData`] for export.

use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

use crate::event::TraceEvent;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::progress::{ProgressMerger, ProgressSink};
use crate::ring::EventRing;
use crate::span::{install_observer, uninstall_observer, ThreadObserver};
use crate::telemetry::{self, IterationRecord, TelemetryLog, TelemetryRow};

/// Default per-rank event capacity (events beyond this are dropped and
/// counted, never reallocated — see [`EventRing`]).
pub const DEFAULT_EVENTS_PER_RANK: usize = 1 << 16;

struct RankSlot {
    ring: Arc<EventRing>,
    metrics: Arc<MetricsRegistry>,
    telemetry: Arc<TelemetryLog>,
}

/// Per-job trace/metrics collector (see module docs).
pub struct Collector {
    epoch: Instant,
    ranks: Vec<RankSlot>,
    progress: Option<Arc<ProgressMerger>>,
}

impl Collector {
    pub fn new(num_ranks: usize) -> Self {
        Self::with_capacity(num_ranks, DEFAULT_EVENTS_PER_RANK)
    }

    pub fn with_capacity(num_ranks: usize, events_per_rank: usize) -> Self {
        Collector {
            epoch: Instant::now(),
            ranks: (0..num_ranks)
                .map(|_| RankSlot {
                    ring: Arc::new(EventRing::with_capacity(events_per_rank)),
                    metrics: Arc::new(MetricsRegistry::new()),
                    telemetry: Arc::new(TelemetryLog::default()),
                })
                .collect(),
            progress: None,
        }
    }

    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Attach a live progress subscriber: every rank installed after
    /// this call offers its iteration records to a shared
    /// [`ProgressMerger`] that emits globally-merged rows to `sink` as
    /// soon as all ranks have contributed. Call before spawning rank
    /// threads.
    pub fn set_progress(&mut self, sink: Arc<dyn ProgressSink>) {
        self.progress = Some(Arc::new(ProgressMerger::new(self.ranks.len(), sink)));
    }

    /// The attached progress merger, if any (e.g. to flush partial rows
    /// after the run completes).
    pub fn progress_merger(&self) -> Option<Arc<ProgressMerger>> {
        self.progress.clone()
    }

    /// Install this collector as the calling thread's observer, recording
    /// into `rank`'s ring/registry. The returned guard restores the
    /// previous observer when dropped; hold it for the rank's lifetime.
    ///
    /// Panics if `rank` is out of range.
    pub fn install(&self, rank: usize) -> InstallGuard {
        self.install_attempt(rank, 0)
    }

    /// Like [`Collector::install`], but stamping every event recorded by
    /// this thread with the given execution `attempt`. Resilient runs
    /// reinstall a rank's observer after each crash/hang recovery with an
    /// incremented attempt so pre-crash events stay distinguishable from
    /// the resumed attempt's in the merged trace.
    pub fn install_attempt(&self, rank: usize, attempt: u32) -> InstallGuard {
        let slot = &self.ranks[rank];
        let prev = install_observer(ThreadObserver {
            ring: Arc::clone(&slot.ring),
            epoch: self.epoch,
            metrics: Arc::clone(&slot.metrics),
            telemetry: Arc::clone(&slot.telemetry),
            rank,
            attempt,
            progress: self.progress.clone(),
        });
        InstallGuard {
            prev: Some(prev),
            _not_send: PhantomData,
        }
    }

    /// Direct handle to a rank's metrics registry (e.g. for recording
    /// from outside the rank thread).
    pub fn metrics(&self, rank: usize) -> Arc<MetricsRegistry> {
        Arc::clone(&self.ranks[rank].metrics)
    }

    /// Harvest all recorded data. Call after every [`InstallGuard`] has
    /// been dropped (i.e. after rank threads joined); panics if a ring is
    /// still shared.
    pub fn finish(self) -> TraceData {
        let ranks = self
            .ranks
            .into_iter()
            .enumerate()
            .map(|(rank, slot)| {
                let mut ring = Arc::try_unwrap(slot.ring)
                    .expect("Collector::finish called while an InstallGuard is still alive");
                let dropped = ring.dropped();
                let mut events = ring.drain();
                // Claim order is per-thread program order; sort so each
                // rank's track is globally time-ordered for exporters.
                events.sort_by_key(|e| (e.ts_ns, e.tid));
                let metrics = slot.metrics.snapshot();
                let telemetry = slot.telemetry.drain();
                RankTrace {
                    rank,
                    events,
                    dropped,
                    metrics,
                    telemetry,
                }
            })
            .collect();
        TraceData { ranks }
    }
}

/// Restores the thread's previous observer on drop. Not `Send`: it must
/// be dropped on the thread that called [`Collector::install`].
pub struct InstallGuard {
    prev: Option<Option<ThreadObserver>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            uninstall_observer(prev);
        }
    }
}

/// Everything one rank recorded.
#[derive(Debug)]
pub struct RankTrace {
    pub rank: usize,
    /// Events sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow.
    pub dropped: u64,
    pub metrics: MetricsSnapshot,
    /// Per-iteration algorithm telemetry this rank recorded.
    pub telemetry: Vec<IterationRecord>,
}

/// Harvested per-rank traces for a whole job.
#[derive(Debug)]
pub struct TraceData {
    pub ranks: Vec<RankTrace>,
}

/// Aggregate wall/modeled time for one span name across all ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRollup {
    pub name: String,
    pub count: u64,
    pub wall_seconds: f64,
    pub modeled_seconds: f64,
}

impl TraceData {
    pub fn total_events(&self) -> usize {
        self.ranks.iter().map(|r| r.events.len()).sum()
    }

    pub fn total_dropped(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped).sum()
    }

    /// Per-rank telemetry merged into global `(phase, iteration)` rows.
    pub fn merged_telemetry(&self) -> Vec<TelemetryRow> {
        let per_rank: Vec<Vec<IterationRecord>> =
            self.ranks.iter().map(|r| r.telemetry.clone()).collect();
        telemetry::merge_ranks(&per_rank)
    }

    /// All rank metrics merged into one snapshot.
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for r in &self.ranks {
            out.merge(&r.metrics);
        }
        out
    }

    /// Sum wall/modeled time per span name across ranks, sorted by
    /// descending wall time. Only complete (duration-bearing) events
    /// contribute.
    pub fn span_rollup(&self) -> Vec<SpanRollup> {
        let mut by_name: std::collections::BTreeMap<&str, SpanRollup> =
            std::collections::BTreeMap::new();
        for rank in &self.ranks {
            for ev in &rank.events {
                let dur = ev.dur_ns();
                if dur == 0 && matches!(ev.kind, crate::event::EventKind::Instant) {
                    continue;
                }
                let e = by_name.entry(ev.name).or_insert_with(|| SpanRollup {
                    name: ev.name.to_string(),
                    count: 0,
                    wall_seconds: 0.0,
                    modeled_seconds: 0.0,
                });
                e.count += 1;
                e.wall_seconds += dur as f64 * 1e-9;
                e.modeled_seconds += ev.modeled_seconds;
            }
        }
        let mut out: Vec<SpanRollup> = by_name.into_values().collect();
        out.sort_by(|a, b| b.wall_seconds.total_cmp(&a.wall_seconds));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::tests::ENABLE_LOCK;
    use crate::{instant, set_enabled, span};

    #[test]
    fn collector_gathers_events_from_rank_threads() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        let collector = Arc::new(Collector::new(2));
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let c = Arc::clone(&collector);
                std::thread::spawn(move || {
                    let _g = c.install(rank);
                    {
                        let mut s = span!("work", rank = rank);
                        crate::add_modeled_seconds(0.5);
                        s.arg("done", true);
                    }
                    instant("tick", "test", vec![]);
                    crate::counter_add("moves", (rank + 1) as u64);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        set_enabled(false);
        let data = Arc::try_unwrap(collector)
            .ok()
            .expect("ranks joined")
            .finish();
        assert_eq!(data.ranks.len(), 2);
        for r in &data.ranks {
            assert_eq!(r.events.len(), 2, "rank {}: span + instant", r.rank);
            assert_eq!(r.dropped, 0);
            assert!(r.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        }
        assert_eq!(data.total_events(), 4);
        assert_eq!(data.merged_metrics().counter("moves"), 3);
        let rollup = data.span_rollup();
        assert_eq!(rollup.len(), 1);
        assert_eq!(rollup[0].name, "work");
        assert_eq!(rollup[0].count, 2);
        assert!((rollup[0].modeled_seconds - 1.0).abs() < 1e-12);
        assert!(rollup[0].wall_seconds > 0.0);
    }

    #[test]
    fn install_guard_restores_previous_observer() {
        let _l = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        let outer = Collector::new(1);
        let inner = Collector::new(1);
        let _og = outer.install(0);
        {
            let _ig = inner.install(0);
            instant("inner", "t", vec![]);
        }
        instant("outer", "t", vec![]);
        drop(_og);
        set_enabled(false);
        let inner = inner.finish();
        let outer = outer.finish();
        assert_eq!(inner.ranks[0].events.len(), 1);
        assert_eq!(inner.ranks[0].events[0].name, "inner");
        assert_eq!(outer.ranks[0].events.len(), 1);
        assert_eq!(outer.ranks[0].events[0].name, "outer");
    }
}
