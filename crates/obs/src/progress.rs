//! Live per-iteration progress streaming.
//!
//! A [`ProgressSink`] subscribes to globally-merged [`TelemetryRow`]s
//! *while the job runs*, fed by the same [`IterationRecord`]s the sweep
//! loop already produces — no extra communication. The fan-in point is
//! [`ProgressMerger`]: every rank offers its record for a
//! `(phase, iteration)` key, and once all ranks have contributed the
//! merged row (identical, field for field, to what
//! [`crate::merge_ranks`] would produce post-hoc) is pushed to the sink.
//!
//! Because the globally-reduced fields (modularity, delta-Q, moves) are
//! all-reduced before any rank records them, they are bit-identical on
//! every rank; the per-rank fields sum over exactly-once owners. A live
//! row is therefore bit-for-bit equal to the post-hoc merged row, which
//! is what the serve layer's bit-for-bit acceptance test pins.
//!
//! The disabled path costs one relaxed atomic load: recording sites
//! check [`crate::span::recording_flags`], and the progress bit is only
//! set while at least one [`ProgressScope`] is alive.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use crate::span::{set_flag, FLAG_PROGRESS};
use crate::telemetry::{IterationRecord, TelemetryRow};

/// Receiver of live merged telemetry rows. Implementations must be cheap
/// and non-blocking — they run on the rank thread that completed a row.
pub trait ProgressSink: Send + Sync {
    fn on_row(&self, row: &TelemetryRow);
}

impl<F: Fn(&TelemetryRow) + Send + Sync> ProgressSink for F {
    fn on_row(&self, row: &TelemetryRow) {
        self(row)
    }
}

// ---------------------------------------------------------------------------
// Global subscriber gate
// ---------------------------------------------------------------------------

/// Count of live [`ProgressScope`]s; the mutex also serialises flag
/// flips so a scope being dropped can never clear the bit out from
/// under a scope being created.
static PROGRESS_SCOPES: Mutex<usize> = Mutex::new(0);

/// RAII guard that keeps the process-global progress bit set while at
/// least one subscriber exists. Creation and drop are cold paths (per
/// job, not per iteration); the hot path stays one relaxed load.
#[must_use = "dropping the scope immediately clears the progress bit"]
pub struct ProgressScope(());

impl ProgressScope {
    pub fn new() -> Self {
        let mut n = PROGRESS_SCOPES.lock().unwrap();
        if *n == 0 {
            set_flag(FLAG_PROGRESS, true);
        }
        *n += 1;
        ProgressScope(())
    }
}

impl Default for ProgressScope {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ProgressScope {
    fn drop(&mut self) {
        let mut n = PROGRESS_SCOPES.lock().unwrap();
        *n -= 1;
        if *n == 0 {
            set_flag(FLAG_PROGRESS, false);
        }
    }
}

// ---------------------------------------------------------------------------
// Rank fan-in
// ---------------------------------------------------------------------------

struct MergeState {
    /// Current execution attempt; contributions from older attempts are
    /// stale and dropped, a newer attempt clears the partial rows the
    /// crashed attempt left behind.
    attempt: u32,
    /// Rows still waiting for contributions: key → (ranks seen, partial
    /// merged row).
    pending: BTreeMap<(u64, u64), (usize, TelemetryRow)>,
    /// Keys already pushed to the sink. Recovery replays iterations
    /// bit-identically, so re-offered rows for emitted keys are skipped
    /// rather than duplicated.
    emitted: BTreeSet<(u64, u64)>,
}

/// Merges per-rank [`IterationRecord`]s into global [`TelemetryRow`]s
/// as they arrive and emits each row exactly once, as soon as every
/// rank has contributed. Shared by all rank threads of one job.
pub struct ProgressMerger {
    num_ranks: usize,
    sink: Arc<dyn ProgressSink>,
    state: Mutex<MergeState>,
}

impl ProgressMerger {
    pub fn new(num_ranks: usize, sink: Arc<dyn ProgressSink>) -> Self {
        ProgressMerger {
            num_ranks,
            sink,
            state: Mutex::new(MergeState {
                attempt: 0,
                pending: BTreeMap::new(),
                emitted: BTreeSet::new(),
            }),
        }
    }

    /// Offer one rank's record for `(rec.phase, rec.iteration)`. The
    /// merge mirrors [`crate::merge_ranks`] exactly: globally-reduced
    /// fields come from the first contributor (identical everywhere),
    /// per-rank fields sum. The sink runs outside the lock.
    pub fn offer(&self, rank: usize, attempt: u32, rec: &IterationRecord) {
        let key = (rec.phase, rec.iteration);
        let complete = {
            let mut st = self.state.lock().unwrap();
            if attempt > st.attempt {
                st.pending.clear();
                st.attempt = attempt;
            } else if attempt < st.attempt {
                return;
            }
            if st.emitted.contains(&key) {
                return;
            }
            let num_ranks = self.num_ranks;
            let (seen, row) = st.pending.entry(key).or_insert_with(|| {
                (
                    0,
                    TelemetryRow {
                        phase: rec.phase,
                        iteration: rec.iteration,
                        modularity: rec.modularity,
                        delta_q: rec.delta_q,
                        moves: rec.moves,
                        active: 0,
                        vertices: 0,
                        communities: 0,
                        community_sizes: crate::Histogram::default(),
                        ghost_bytes_per_rank: vec![0; num_ranks],
                    },
                )
            });
            row.active += rec.active;
            row.vertices += rec.vertices;
            row.communities += rec.communities;
            row.community_sizes.merge(&rec.community_sizes);
            row.ghost_bytes_per_rank[rank] += rec.ghost_bytes;
            *seen += 1;
            if *seen == self.num_ranks {
                let (_, row) = st.pending.remove(&key).unwrap();
                st.emitted.insert(key);
                Some(row)
            } else {
                None
            }
        };
        if let Some(row) = complete {
            self.sink.on_row(&row);
        }
    }

    /// Emit every still-pending partial row, in `(phase, iteration)`
    /// order. Called once after the run completes: ranks that
    /// early-terminated out of an iteration contribute nothing to it,
    /// so such rows never reach `num_ranks` contributions — exactly the
    /// partial sums [`crate::merge_ranks`] produces for them.
    pub fn flush(&self) {
        let rows: Vec<TelemetryRow> = {
            let mut st = self.state.lock().unwrap();
            let pending = std::mem::take(&mut st.pending);
            pending
                .into_iter()
                .map(|(key, (_, row))| {
                    st.emitted.insert(key);
                    row
                })
                .collect()
        };
        for row in &rows {
            self.sink.on_row(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;
    use crate::telemetry::merge_ranks;

    fn rec(phase: u64, iteration: u64, active: u64, ghost: u64) -> IterationRecord {
        let mut sizes = Histogram::default();
        sizes.observe(4);
        sizes.observe(ghost.max(1));
        IterationRecord {
            phase,
            iteration,
            modularity: 0.5 + phase as f64 / 10.0 + iteration as f64 / 100.0,
            delta_q: 0.01 * (iteration as f64 + 1.0),
            moves: 7 + iteration,
            active,
            vertices: 100,
            communities: 10,
            community_sizes: sizes,
            ghost_bytes: ghost,
        }
    }

    #[derive(Default)]
    struct Capture(Mutex<Vec<TelemetryRow>>);

    impl ProgressSink for Capture {
        fn on_row(&self, row: &TelemetryRow) {
            self.0.lock().unwrap().push(row.clone());
        }
    }

    #[test]
    fn live_rows_match_post_hoc_merge_bit_for_bit() {
        let per_rank = vec![
            vec![rec(0, 0, 80, 128), rec(0, 1, 40, 64), rec(1, 0, 30, 32)],
            vec![rec(0, 0, 90, 256), rec(0, 1, 45, 96), rec(1, 0, 35, 16)],
        ];
        let cap = Arc::new(Capture::default());
        let merger = ProgressMerger::new(2, cap.clone());
        // Interleave ranks out of order, as real threads would.
        merger.offer(0, 0, &per_rank[0][0]);
        merger.offer(1, 0, &per_rank[1][0]);
        merger.offer(1, 0, &per_rank[1][1]);
        merger.offer(0, 0, &per_rank[0][2]);
        merger.offer(0, 0, &per_rank[0][1]);
        merger.offer(1, 0, &per_rank[1][2]);
        merger.flush();
        let mut live = cap.0.lock().unwrap().clone();
        live.sort_by_key(|r| (r.phase, r.iteration));
        let post_hoc = merge_ranks(&per_rank);
        assert_eq!(live.len(), post_hoc.len());
        for (a, b) in live.iter().zip(post_hoc.iter()) {
            assert_eq!(a, b);
            assert_eq!(a.modularity.to_bits(), b.modularity.to_bits());
            assert_eq!(a.delta_q.to_bits(), b.delta_q.to_bits());
        }
    }

    #[test]
    fn flush_emits_partial_rows_for_early_terminated_ranks() {
        let per_rank = vec![
            vec![rec(0, 0, 80, 128), rec(0, 1, 40, 64)],
            vec![rec(0, 0, 90, 256)],
        ];
        let cap = Arc::new(Capture::default());
        let merger = ProgressMerger::new(2, cap.clone());
        for (rank, recs) in per_rank.iter().enumerate() {
            for r in recs {
                merger.offer(rank, 0, r);
            }
        }
        assert_eq!(cap.0.lock().unwrap().len(), 1, "only (0,0) is complete");
        merger.flush();
        let mut live = cap.0.lock().unwrap().clone();
        live.sort_by_key(|r| (r.phase, r.iteration));
        assert_eq!(live, merge_ranks(&per_rank));
        // Flushing twice is a no-op.
        merger.flush();
        assert_eq!(cap.0.lock().unwrap().len(), 2);
    }

    #[test]
    fn recovery_attempts_replay_without_duplicate_rows() {
        let cap = Arc::new(Capture::default());
        let merger = ProgressMerger::new(2, cap.clone());
        // Attempt 0: iteration 0 completes, iteration 1 is half done
        // when rank 1 crashes.
        merger.offer(0, 0, &rec(0, 0, 80, 128));
        merger.offer(1, 0, &rec(0, 0, 90, 256));
        merger.offer(0, 0, &rec(0, 1, 40, 64));
        // Attempt 1 replays both iterations bit-identically.
        merger.offer(0, 1, &rec(0, 0, 80, 128));
        merger.offer(1, 1, &rec(0, 0, 90, 256));
        merger.offer(0, 1, &rec(0, 1, 40, 64));
        merger.offer(1, 1, &rec(0, 1, 45, 96));
        // A straggler thread from the dead attempt is ignored.
        merger.offer(1, 0, &rec(0, 1, 45, 96));
        merger.flush();
        let live = cap.0.lock().unwrap().clone();
        assert_eq!(live.len(), 2, "each (phase, iteration) emitted once");
        let expected = merge_ranks(&[
            vec![rec(0, 0, 80, 128), rec(0, 1, 40, 64)],
            vec![rec(0, 0, 90, 256), rec(0, 1, 45, 96)],
        ]);
        assert_eq!(live, expected);
    }

    #[test]
    fn progress_scopes_refcount_the_global_bit() {
        let _l = crate::span::tests::ENABLE_LOCK.lock().unwrap();
        assert_eq!(crate::span::recording_flags() & FLAG_PROGRESS, 0);
        let a = ProgressScope::new();
        let b = ProgressScope::new();
        assert_ne!(crate::span::recording_flags() & FLAG_PROGRESS, 0);
        drop(a);
        assert_ne!(
            crate::span::recording_flags() & FLAG_PROGRESS,
            0,
            "bit stays set while any scope is alive"
        );
        drop(b);
        assert_eq!(crate::span::recording_flags() & FLAG_PROGRESS, 0);
    }
}
