//! # louvain-obs — rank-aware tracing, metrics, and run reports
//!
//! A lightweight, zero-dependency observability layer for the
//! distributed Louvain workspace. It reproduces, as a first-class
//! artifact, the kind of evidence the source paper gathers with
//! HPCToolkit (Section V-A: ~98% of time in the iteration body, split
//! across community communication / modularity reduction / compute).
//!
//! Pieces:
//!
//! - **Spans** ([`span!`], [`span`], [`SpanGuard`]): RAII scopes that
//!   record wall-clock duration *and* the modeled-seconds delta (α-β
//!   comm model + work counters) side by side, into a per-rank
//!   lock-free [`EventRing`]. One relaxed atomic load when disabled.
//! - **Collector** ([`Collector`]): one ring + metrics registry per
//!   rank, a shared epoch so rank timelines align, and a harvest step
//!   producing [`TraceData`].
//! - **Exporters** ([`chrome_trace_json`], [`jsonl`]): Chrome
//!   trace-event JSON (open in Perfetto / `chrome://tracing`; one `pid`
//!   per rank) and line-delimited JSON.
//! - **Metrics** ([`MetricsRegistry`], [`counter_add`], [`gauge_set`],
//!   [`hist_observe`]): counters, gauges, log2 histograms; snapshots
//!   merge commutatively across ranks.
//! - **Run reports** ([`RunReport`]): the end-of-run JSON artifact with
//!   per-step byte totals, modeled-time breakdown, merged metrics, and
//!   span rollups.
//!
//! This crate sits below `louvain-comm` in the dependency graph so the
//! communicator can auto-span its own steps; anything needing both the
//! communicator and reports (cross-rank aggregation) lives above, in
//! `louvain-dist`.

mod artifact;
mod chrome;
mod collector;
mod event;
mod json;
mod metrics;
mod ops;
mod progress;
mod prom;
mod report;
mod ring;
mod span;
mod telemetry;

pub use artifact::{run_label, RunArtifact, RunEntry, ARTIFACT_MAGIC, ARTIFACT_VERSION};
pub use chrome::{chrome_trace, chrome_trace_json, jsonl};
pub use collector::{
    Collector, InstallGuard, RankTrace, SpanRollup, TraceData, DEFAULT_EVENTS_PER_RANK,
};
pub use event::{ArgValue, EventKind, TraceEvent};
pub use json::{Json, JsonError};
pub use metrics::{
    counter_add, gauge_set, hist_observe, peak_rss_bytes, GaugeStat, Histogram, MetricsRegistry,
    MetricsSnapshot, HIST_BUCKETS,
};
pub use ops::{
    parse_flight_dump, unix_ms_now, OpEvent, OpKind, OpsPlane, DEFAULT_FLIGHT_CAPACITY,
    FLIGHT_MAGIC, FLIGHT_VERSION,
};
pub use progress::{ProgressMerger, ProgressScope, ProgressSink};
pub use prom::{parse_prometheus_text, prometheus_name, prometheus_text};
pub use report::{
    FaultTotals, HealthTotals, HungEvent, MessageEdge, ModeledBreakdown, PhaseProfileRow,
    RankHealth, RankTotals, RunReport, StepTotal, RUN_REPORT_VERSION,
};
pub use ring::EventRing;
pub use span::{
    add_modeled_seconds, complete_span, enabled, init_from_env, instant, modeled_seconds_now,
    set_enabled, span, span_cat, telemetry_enabled, SpanGuard, Stopwatch,
};
pub use telemetry::{merge_ranks, record_iteration, IterationRecord, TelemetryLog, TelemetryRow};

// ---------------------------------------------------------------------------
// Metric-name registry
// ---------------------------------------------------------------------------

/// Kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// The one table of every metric name the workspace records, in
/// namespace order. Recording sites across the crates must use names
/// from this table — `tests/observability.rs` asserts a traced run
/// emits no stranger — so dashboards and `lens` can rely on the
/// namespace without grepping call sites.
///
/// Namespaces: `sweep.*` (move sweep work), `ghost.*` (ghost refresh,
/// split full/delta), `ingest.*` (edge-list ingestion), `comm.*`
/// (envelope transport), `wd_*` (rank-health watchdog; underscore names
/// match the RunReport health section they feed), `checkpoint.*`
/// (checkpoint/restart), `resil.*` (recovery driver), `rank.*`
/// (per-rank imbalance histograms attached at report build), plus the
/// `modularity` gauge.
pub const METRIC_REGISTRY: &[(&str, MetricKind, &str)] = &[
    (
        "checkpoint.bytes",
        MetricKind::Counter,
        "checkpoint bytes written",
    ),
    (
        "checkpoint.restores",
        MetricKind::Counter,
        "checkpoint restores (resume or in-run recovery)",
    ),
    (
        "checkpoint.writes",
        MetricKind::Counter,
        "checkpoint snapshots written",
    ),
    (
        "comm.checksum_rejects",
        MetricKind::Counter,
        "envelopes rejected by checksum",
    ),
    (
        "ghost.delta.changed",
        MetricKind::Counter,
        "ghost slots actually changed in delta refreshes",
    ),
    (
        "ghost.delta.refreshes",
        MetricKind::Counter,
        "delta ghost refreshes",
    ),
    (
        "ghost.delta.slots",
        MetricKind::Counter,
        "ghost slots shipped by delta refreshes",
    ),
    (
        "ghost.full.refreshes",
        MetricKind::Counter,
        "full ghost refreshes",
    ),
    (
        "ghost.full.slots",
        MetricKind::Counter,
        "ghost slots shipped by full refreshes",
    ),
    (
        "ingest.duplicates_merged",
        MetricKind::Counter,
        "duplicate edges merged at ingest",
    ),
    (
        "ingest.edges_kept",
        MetricKind::Counter,
        "edges kept at ingest",
    ),
    (
        "ingest.self_loops_dropped",
        MetricKind::Counter,
        "self loops dropped at ingest",
    ),
    (
        "mem.csr_bytes",
        MetricKind::Gauge,
        "local CSR graph footprint (heap bytes only, per phase; \
         mapped slab bytes are reported under mem.mapped_bytes)",
    ),
    (
        "mem.ghost_bytes",
        MetricKind::Gauge,
        "ghost-layer footprint (bytes, per phase)",
    ),
    (
        "mem.mapped_bytes",
        MetricKind::Gauge,
        "slab bytes mapped or range-read from the store (not heap; \
         disjoint from mem.csr_bytes, which counts heap copies only)",
    ),
    (
        "mem.peak_rss_bytes",
        MetricKind::Gauge,
        "process peak RSS (VmHWM, bytes; 0 where unavailable)",
    ),
    (
        "mem.scratch_bytes",
        MetricKind::Gauge,
        "iteration scratch-arena high-water mark (bytes)",
    ),
    (
        "mem.wire_bytes",
        MetricKind::Gauge,
        "wire-buffer (outgoing message staging) high-water mark (bytes)",
    ),
    (
        "modularity",
        MetricKind::Gauge,
        "per-iteration global modularity",
    ),
    (
        "rank.total_bytes",
        MetricKind::Histogram,
        "per-rank total traffic (one observation per rank)",
    ),
    (
        "resil.hang_recoveries",
        MetricKind::Counter,
        "recoveries triggered by hung-rank declarations",
    ),
    (
        "serve.cache_evictions",
        MetricKind::Counter,
        "cached job results evicted by the LRU capacity bound",
    ),
    (
        "serve.cache_hits",
        MetricKind::Counter,
        "jobs answered from the fingerprint-keyed result cache",
    ),
    (
        "serve.cache_misses",
        MetricKind::Counter,
        "jobs that had to run because no cached result matched",
    ),
    (
        "serve.job_latency_ms",
        MetricKind::Histogram,
        "submit-to-result latency per served job (milliseconds)",
    ),
    (
        "serve.jobs_accepted",
        MetricKind::Counter,
        "jobs admitted past the bounded queue",
    ),
    (
        "serve.jobs_cancelled",
        MetricKind::Counter,
        "jobs drained to a phase-boundary checkpoint by shutdown",
    ),
    (
        "serve.jobs_completed",
        MetricKind::Counter,
        "jobs that finished with a result (fresh or cached)",
    ),
    (
        "serve.jobs_quarantined",
        MetricKind::Counter,
        "jobs quarantined by the poisoned-job ladder",
    ),
    (
        "serve.jobs_rejected",
        MetricKind::Counter,
        "submissions shed with queue_full by admission control",
    ),
    (
        "serve.jobs_resumed",
        MetricKind::Counter,
        "jobs that restarted from a checkpoint instead of from scratch",
    ),
    (
        "serve.jobs_running",
        MetricKind::Gauge,
        "jobs currently executing on worker threads",
    ),
    (
        "serve.queue_depth",
        MetricKind::Gauge,
        "admission queue depth (jobs waiting for a worker)",
    ),
    (
        "sweep.batch_moves",
        MetricKind::Counter,
        "vertices moved by colored conflict-free batches",
    ),
    (
        "sweep.colors",
        MetricKind::Counter,
        "color classes of the per-phase distance-1 coloring",
    ),
    (
        "sweep.edges",
        MetricKind::Counter,
        "edges scanned by move sweeps",
    ),
    ("sweep.moves", MetricKind::Counter, "vertices moved"),
    (
        "sweep.vertices",
        MetricKind::Counter,
        "vertices visited by move sweeps",
    ),
    (
        "vf.collapsed",
        MetricKind::Counter,
        "vertices collapsed into their anchor by vertex following",
    ),
    (
        "wait.collective_ns",
        MetricKind::Counter,
        "idle nanoseconds blocked in collective fill-waits",
    ),
    (
        "wait.recv_ns",
        MetricKind::Counter,
        "idle nanoseconds blocked in point-to-point receives",
    ),
    (
        "wd_backoff_us",
        MetricKind::Histogram,
        "watchdog retry backoff (microseconds)",
    ),
    (
        "wd_retries",
        MetricKind::Counter,
        "watchdog deadline extensions (stale peer)",
    ),
    (
        "wd_stragglers",
        MetricKind::Counter,
        "watchdog straggler extensions (live peer)",
    ),
    (
        "wd_timeouts",
        MetricKind::Counter,
        "watchdog window expiries",
    ),
];

/// Whether `name` is in [`METRIC_REGISTRY`] with the given kind.
pub fn metric_registered(name: &str, kind: MetricKind) -> bool {
    METRIC_REGISTRY
        .iter()
        .any(|(n, k, _)| *n == name && *k == kind)
}

/// Names in `snapshot` that are missing from [`METRIC_REGISTRY`] (or
/// registered under a different kind), sorted. Empty means the snapshot
/// is drift-free.
pub fn unregistered_metrics(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut out = Vec::new();
    for name in snapshot.counters.keys() {
        if !metric_registered(name, MetricKind::Counter) {
            out.push(name.clone());
        }
    }
    for name in snapshot.gauges.keys() {
        if !metric_registered(name, MetricKind::Gauge) {
            out.push(name.clone());
        }
    }
    for name in snapshot.histograms.keys() {
        if !metric_registered(name, MetricKind::Histogram) {
            out.push(name.clone());
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_duplicate_free() {
        for w in METRIC_REGISTRY.windows(2) {
            assert!(w[0].0 < w[1].0, "{} !< {}", w[0].0, w[1].0);
        }
    }

    #[test]
    fn unregistered_names_are_reported() {
        let reg = MetricsRegistry::new();
        reg.counter_add("sweep.moves", 1);
        reg.counter_add("sweep.bogus", 1);
        reg.gauge_set("modularity", 0.5);
        reg.hist_observe("wd_timeouts", 3); // right name, wrong kind
        let drift = unregistered_metrics(&reg.snapshot());
        assert_eq!(
            drift,
            vec!["sweep.bogus".to_string(), "wd_timeouts".to_string()]
        );
        assert!(metric_registered("wd_timeouts", MetricKind::Counter));
        assert!(!metric_registered("watchdog.timeouts", MetricKind::Counter));
    }
}
