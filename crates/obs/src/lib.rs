//! # louvain-obs — rank-aware tracing, metrics, and run reports
//!
//! A lightweight, zero-dependency observability layer for the
//! distributed Louvain workspace. It reproduces, as a first-class
//! artifact, the kind of evidence the source paper gathers with
//! HPCToolkit (Section V-A: ~98% of time in the iteration body, split
//! across community communication / modularity reduction / compute).
//!
//! Pieces:
//!
//! - **Spans** ([`span!`], [`span`], [`SpanGuard`]): RAII scopes that
//!   record wall-clock duration *and* the modeled-seconds delta (α-β
//!   comm model + work counters) side by side, into a per-rank
//!   lock-free [`EventRing`]. One relaxed atomic load when disabled.
//! - **Collector** ([`Collector`]): one ring + metrics registry per
//!   rank, a shared epoch so rank timelines align, and a harvest step
//!   producing [`TraceData`].
//! - **Exporters** ([`chrome_trace_json`], [`jsonl`]): Chrome
//!   trace-event JSON (open in Perfetto / `chrome://tracing`; one `pid`
//!   per rank) and line-delimited JSON.
//! - **Metrics** ([`MetricsRegistry`], [`counter_add`], [`gauge_set`],
//!   [`hist_observe`]): counters, gauges, log2 histograms; snapshots
//!   merge commutatively across ranks.
//! - **Run reports** ([`RunReport`]): the end-of-run JSON artifact with
//!   per-step byte totals, modeled-time breakdown, merged metrics, and
//!   span rollups.
//!
//! This crate sits below `louvain-comm` in the dependency graph so the
//! communicator can auto-span its own steps; anything needing both the
//! communicator and reports (cross-rank aggregation) lives above, in
//! `louvain-dist`.

mod chrome;
mod collector;
mod event;
mod json;
mod metrics;
mod report;
mod ring;
mod span;

pub use chrome::{chrome_trace, chrome_trace_json, jsonl};
pub use collector::{
    Collector, InstallGuard, RankTrace, SpanRollup, TraceData, DEFAULT_EVENTS_PER_RANK,
};
pub use event::{ArgValue, EventKind, TraceEvent};
pub use json::{Json, JsonError};
pub use metrics::{
    counter_add, gauge_set, hist_observe, GaugeStat, Histogram, MetricsRegistry, MetricsSnapshot,
    HIST_BUCKETS,
};
pub use report::{
    FaultTotals, HealthTotals, HungEvent, ModeledBreakdown, RankHealth, RankTotals, RunReport,
    StepTotal, RUN_REPORT_VERSION,
};
pub use ring::EventRing;
pub use span::{
    add_modeled_seconds, enabled, init_from_env, instant, modeled_seconds_now, set_enabled, span,
    span_cat, SpanGuard, Stopwatch,
};
