//! Streaming edge consumers.
//!
//! An [`EdgeSink`] receives undirected edges one at a time, so producers
//! (the `gen` generators, the text-edge-list parser) can feed consumers
//! that never hold the whole edge set in memory — most importantly the
//! out-of-core slab builder in `louvain-store`. The in-memory paths are
//! thin wrappers over the same emission loops (an [`EdgeList`] is itself
//! a sink), which is what makes the streamed and materialized pipelines
//! bit-identical: both see the exact same edge sequence.

use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::{VertexId, Weight};

/// A consumer of a stream of undirected edges.
///
/// `u == v` denotes a self-loop. Implementations may reject an edge with
/// a typed [`IngestError`] (policy violations, out-of-range endpoints);
/// infallible sinks simply return `Ok(())`.
pub trait EdgeSink {
    fn edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), IngestError>;
}

impl EdgeSink for EdgeList {
    fn edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), IngestError> {
        self.try_push(u, v, w)
    }
}

/// Pass-through sink that counts accepted edges — used by generators
/// whose loops target an edge count, and by CLI progress reporting.
pub struct CountingSink<'a, S: EdgeSink + ?Sized> {
    inner: &'a mut S,
    edges: u64,
}

impl<'a, S: EdgeSink + ?Sized> CountingSink<'a, S> {
    pub fn new(inner: &'a mut S) -> Self {
        Self { inner, edges: 0 }
    }

    /// Edges accepted (forwarded without error) so far.
    pub fn edges(&self) -> u64 {
        self.edges
    }
}

impl<S: EdgeSink + ?Sized> EdgeSink for CountingSink<'_, S> {
    fn edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), IngestError> {
        self.inner.edge(u, v, w)?;
        self.edges += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_is_a_sink() {
        let mut el = EdgeList::new(3);
        el.edge(0, 1, 1.0).unwrap();
        el.edge(1, 2, 2.0).unwrap();
        assert_eq!(el.num_edges(), 2);
        assert!(el.edge(0, 7, 1.0).is_err());
    }

    #[test]
    fn counting_sink_counts_only_accepted_edges() {
        let mut el = EdgeList::new(2);
        let mut c = CountingSink::new(&mut el);
        c.edge(0, 1, 1.0).unwrap();
        let _ = c.edge(0, 5, 1.0);
        assert_eq!(c.edges(), 1);
    }
}
