//! Community assignments, modularity (Eq. 2 of the paper), and
//! shared-memory coarsening.

use crate::csr::Csr;
use crate::hash::{fast_map, fast_map_with_capacity};
use crate::{VertexId, Weight};

/// A community id per vertex. Ids are arbitrary `u64`s — in the Louvain
/// algorithm they originate from vertex ids ("community IDs originate from
/// vertex IDs", Fig 1 of the paper) and become dense only after
/// [`renumber`].
pub type CommunityAssignment = Vec<VertexId>;

/// Assignment with every vertex in its own community (the Louvain start
/// state).
pub fn singleton_assignment(n: usize) -> CommunityAssignment {
    (0..n as VertexId).collect()
}

/// Modularity per Eq. 2 of the paper:
/// `Q = Σ_c [ e_in(c)/2m − (a_c/2m)² ]`
/// where `e_in(c)` is the total weight of arcs internal to `c` (self-loops
/// once) and `a_c` the summed weighted degree of its members.
pub fn modularity(g: &Csr, comm: &[VertexId]) -> f64 {
    assert_eq!(g.num_vertices(), comm.len());
    let two_m = g.two_m();
    if two_m == 0.0 {
        return 0.0;
    }
    let mut e_in = fast_map::<VertexId, Weight>();
    let mut a = fast_map::<VertexId, Weight>();
    for u in 0..g.num_vertices() as VertexId {
        let cu = comm[u as usize];
        *a.entry(cu).or_insert(0.0) += g.weighted_degree(u);
        for (v, w) in g.neighbors(u) {
            if comm[v as usize] == cu {
                *e_in.entry(cu).or_insert(0.0) += w;
            }
        }
    }
    let mut q = 0.0;
    for (c, &ac) in &a {
        let ein = e_in.get(c).copied().unwrap_or(0.0);
        q += ein / two_m - (ac / two_m) * (ac / two_m);
    }
    q
}

/// Renumber arbitrary community ids to dense `0..k`; returns the dense
/// assignment and `k`. Order of first appearance (deterministic).
pub fn renumber(comm: &[VertexId]) -> (CommunityAssignment, usize) {
    let mut map = fast_map_with_capacity::<VertexId, VertexId>(comm.len());
    let mut next: VertexId = 0;
    let dense = comm
        .iter()
        .map(|&c| {
            *map.entry(c).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect();
    (dense, next as usize)
}

/// Sizes of each community under a dense assignment.
pub fn community_sizes(dense: &[VertexId], k: usize) -> Vec<usize> {
    let mut sizes = vec![0usize; k];
    for &c in dense {
        sizes[c as usize] += 1;
    }
    sizes
}

/// Number of distinct communities in an (arbitrary-id) assignment.
pub fn count_communities(comm: &[VertexId]) -> usize {
    let mut set = crate::hash::fast_set();
    set.extend(comm.iter().copied());
    set.len()
}

/// Collapse each community into one vertex (the phase transition of the
/// Louvain method). Weights between communities are summed; internal arcs
/// become self-loop weight. Returns the coarse graph and the dense
/// vertex→coarse-vertex map.
///
/// With the arc-storage convention, modularity is *exactly* preserved:
/// `modularity(coarse, singleton) == modularity(g, comm)`.
pub fn coarsen(g: &Csr, comm: &[VertexId]) -> (Csr, CommunityAssignment) {
    assert_eq!(g.num_vertices(), comm.len());
    let (dense, k) = renumber(comm);
    let mut acc = fast_map_with_capacity::<(VertexId, VertexId), Weight>(g.num_arcs() / 2 + 1);
    for u in 0..g.num_vertices() as VertexId {
        let cu = dense[u as usize];
        for (v, w) in g.neighbors(u) {
            let cv = dense[v as usize];
            *acc.entry((cu, cv)).or_insert(0.0) += w;
        }
    }
    // Off-diagonal entries appear from both orientations already; the
    // diagonal accumulated every internal arc (2× per undirected internal
    // edge + 1× per original loop), which is exactly the self-loop weight
    // that keeps a_c and e_in invariant.
    let arcs: Vec<_> = acc.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    (Csr::from_arcs(k, arcs), dense)
}

/// Map a fine-graph assignment through a coarse-graph assignment:
/// `result[v] = coarse_comm[fine_to_coarse[v]]`. Used to flatten the
/// multi-phase Louvain hierarchy back onto original vertices.
pub fn project(fine_to_coarse: &[VertexId], coarse_comm: &[VertexId]) -> CommunityAssignment {
    fine_to_coarse
        .iter()
        .map(|&cv| coarse_comm[cv as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    /// Two triangles joined by one edge — the classic two-community graph.
    fn two_triangles() -> Csr {
        Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        ))
    }

    #[test]
    fn modularity_of_good_split_is_positive() {
        let g = two_triangles();
        let comm = vec![0, 0, 0, 1, 1, 1];
        let q = modularity(&g, &comm);
        // Known value: e_in per triangle = 6 (3 edges × 2 arcs), 2m = 14,
        // a_c = 7 → Q = 2·(6/14 − (7/14)²) = 2·(0.42857 − 0.25) ≈ 0.35714.
        assert!((q - 0.357142857).abs() < 1e-8, "q = {q}");
    }

    #[test]
    fn modularity_of_single_community_is_zero() {
        let g = two_triangles();
        let comm = vec![0; 6];
        let q = modularity(&g, &comm);
        assert!(q.abs() < 1e-12, "q = {q}");
    }

    #[test]
    fn modularity_of_singletons_is_negative() {
        let g = two_triangles();
        let q = modularity(&g, &singleton_assignment(6));
        assert!(q < 0.0, "q = {q}");
    }

    #[test]
    fn renumber_is_dense_and_stable() {
        let (dense, k) = renumber(&[42, 7, 42, 9, 7]);
        assert_eq!(dense, vec![0, 1, 0, 2, 1]);
        assert_eq!(k, 3);
    }

    #[test]
    fn sizes_and_counts() {
        let (dense, k) = renumber(&[5, 5, 8, 5]);
        assert_eq!(community_sizes(&dense, k), vec![3, 1]);
        assert_eq!(count_communities(&[5, 5, 8, 5]), 2);
    }

    #[test]
    fn coarsen_preserves_modularity_exactly() {
        let g = two_triangles();
        let comm = vec![0, 0, 0, 1, 1, 1];
        let q_fine = modularity(&g, &comm);
        let (coarse, _map) = coarsen(&g, &comm);
        assert_eq!(coarse.num_vertices(), 2);
        let q_coarse = modularity(&coarse, &singleton_assignment(2));
        assert!((q_fine - q_coarse).abs() < 1e-12);
    }

    #[test]
    fn coarsen_weights_are_correct() {
        let g = two_triangles();
        let (coarse, map) = coarsen(&g, &[0, 0, 0, 1, 1, 1]);
        assert_eq!(map, vec![0, 0, 0, 1, 1, 1]);
        // Each triangle: 3 internal undirected edges → self-loop weight 6.
        assert_eq!(coarse.self_loop(0), 6.0);
        assert_eq!(coarse.self_loop(1), 6.0);
        // The bridge keeps weight 1 in both directions.
        let w01: f64 = coarse
            .neighbors(0)
            .filter(|&(v, _)| v == 1)
            .map(|(_, w)| w)
            .sum();
        assert_eq!(w01, 1.0);
        assert_eq!(coarse.two_m(), g.two_m());
    }

    #[test]
    fn project_composes_assignments() {
        let fine_to_coarse = vec![0, 0, 1, 1, 2];
        let coarse_comm = vec![7, 7, 9];
        assert_eq!(project(&fine_to_coarse, &coarse_comm), vec![7, 7, 7, 7, 9]);
    }

    #[test]
    fn modularity_empty_graph_is_zero() {
        let g = Csr::from_edge_list(EdgeList::new(3));
        assert_eq!(modularity(&g, &singleton_assignment(3)), 0.0);
    }
}
