//! Atomic `f64` built on `AtomicU64` bit transmutation with a CAS loop —
//! the standard technique for concurrent floating-point accumulators
//! (community degree sums updated by many threads at once). Shared by the
//! shared-memory baseline and the distributed algorithm's intra-rank
//! ("OpenMP") parallel sweep.

use std::sync::atomic::{AtomicU64, Ordering};

/// An `f64` supporting relaxed atomic load/store and `fetch_add`.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    pub fn new(v: f64) -> Self {
        Self {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    #[inline]
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically add `delta`; returns the previous value.
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn load_store_roundtrip() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let a = AtomicF64::new(1.0);
        assert_eq!(a.fetch_add(2.0), 1.0);
        assert_eq!(a.load(), 3.0);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let a = Arc::new(AtomicF64::new(0.0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        a.fetch_add(0.5);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.load(), 4.0 * 10_000.0 * 0.5);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(AtomicF64::default().load(), 0.0);
    }
}
