//! Synthetic graph generators.
//!
//! These stand in for the paper's workloads (see DESIGN.md §2):
//!
//! | generator | paper workload it substitutes |
//! |---|---|
//! | [`lfr`] | LFR benchmark graphs with ground truth (Table VII) |
//! | [`ssca2`] | GTgraph SSCA#2 weak-scaling graphs (Table V, Fig 4) |
//! | [`rmat`] | social networks: com-orkut, twitter-2010, soc-friendster, soc-sinaweibo |
//! | [`banded`] | mesh/banded matrices: channel, nlpkkt240 |
//! | [`weblike`] | web crawls: uk-2007, sk-2005, arabic-2005, webbase-2001, web-* |
//! | [`erdos_renyi`] | unstructured noise (tests) |
//!
//! All generators are deterministic in `(params, seed)`.

mod banded;
mod erdos_renyi;
mod grid;
mod lfr;
mod preferential;
mod rmat;
mod smallworld;
mod ssca2;
mod weblike;

pub use banded::{banded, banded_stream, BandedParams};
pub use erdos_renyi::{erdos_renyi, erdos_renyi_stream, ErdosRenyiParams};
pub use grid::{grid3d, grid3d_stream, Grid3dParams};
pub use lfr::{lfr, lfr_stream, LfrParams};
pub use preferential::{barabasi_albert, barabasi_albert_stream, BarabasiAlbertParams};
pub use rmat::{rmat, rmat_stream, RmatParams};
pub use smallworld::{watts_strogatz, watts_strogatz_stream, WattsStrogatzParams};
pub use ssca2::{ssca2, ssca2_stream, Ssca2Params};
pub use weblike::{weblike, weblike_stream, WeblikeParams};

use rand::Rng;

use crate::community::CommunityAssignment;
use crate::csr::Csr;

/// A generated graph, optionally with the planted ("ground truth")
/// community structure used for quality assessment.
#[derive(Debug, Clone)]
pub struct Generated {
    pub graph: Csr,
    pub ground_truth: Option<CommunityAssignment>,
}

/// Sample an integer from a bounded discrete power law `P(k) ∝ k^(−tau)`,
/// `k ∈ [lo, hi]`, by inverse transform on the continuous distribution.
pub(crate) fn power_law_sample(rng: &mut impl Rng, tau: f64, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo >= 1 && hi >= lo);
    if lo == hi {
        return lo;
    }
    let u: f64 = rng.random();
    let one_minus = 1.0 - tau;
    let k = if one_minus.abs() < 1e-9 {
        // tau == 1: log-uniform.
        (lo as f64) * ((hi as f64) / (lo as f64)).powf(u)
    } else {
        let lo_p = (lo as f64).powf(one_minus);
        let hi_p = (hi as f64).powf(one_minus);
        (lo_p + u * (hi_p - lo_p)).powf(1.0 / one_minus)
    };
    (k.round() as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Every generator's streamed path must emit the exact edge sequence
    /// its in-memory wrapper collects — that equivalence is what makes
    /// slab-built CSRs bit-identical to `Csr::from_edge_list`.
    #[test]
    fn streamed_paths_match_in_memory_generators() {
        type StreamCase = (&'static str, Box<dyn Fn(&mut EdgeList)>, Generated);
        let cases: Vec<StreamCase> = vec![
            (
                "rmat",
                Box::new(|el: &mut EdgeList| rmat_stream(RmatParams::social(9, 4, 7), el).unwrap()),
                rmat(RmatParams::social(9, 4, 7)),
            ),
            (
                "ssca2",
                Box::new(|el: &mut EdgeList| {
                    ssca2_stream(Ssca2Params::paper(700, 3), el).unwrap();
                }),
                ssca2(Ssca2Params::paper(700, 3)),
            ),
            (
                "erdos_renyi",
                Box::new(|el: &mut EdgeList| {
                    erdos_renyi_stream(
                        ErdosRenyiParams {
                            n: 400,
                            avg_degree: 6.0,
                            seed: 5,
                        },
                        el,
                    )
                    .unwrap()
                }),
                erdos_renyi(ErdosRenyiParams {
                    n: 400,
                    avg_degree: 6.0,
                    seed: 5,
                }),
            ),
            (
                "banded",
                Box::new(|el: &mut EdgeList| {
                    banded_stream(BandedParams::channel_like(300, 2), el).unwrap()
                }),
                banded(BandedParams::channel_like(300, 2)),
            ),
            (
                "grid3d",
                Box::new(|el: &mut EdgeList| {
                    grid3d_stream(Grid3dParams::cube(343, 4), el).unwrap()
                }),
                grid3d(Grid3dParams::cube(343, 4)),
            ),
            (
                "lfr",
                Box::new(|el: &mut EdgeList| {
                    lfr_stream(LfrParams::small(500, 11), el).unwrap();
                }),
                lfr(LfrParams::small(500, 11)),
            ),
            (
                "watts_strogatz",
                Box::new(|el: &mut EdgeList| {
                    watts_strogatz_stream(
                        WattsStrogatzParams {
                            n: 300,
                            k: 4,
                            beta: 0.2,
                            seed: 9,
                        },
                        el,
                    )
                    .unwrap()
                }),
                watts_strogatz(WattsStrogatzParams {
                    n: 300,
                    k: 4,
                    beta: 0.2,
                    seed: 9,
                }),
            ),
            (
                "barabasi_albert",
                Box::new(|el: &mut EdgeList| {
                    barabasi_albert_stream(
                        BarabasiAlbertParams {
                            n: 400,
                            m: 3,
                            seed: 6,
                        },
                        el,
                    )
                    .unwrap()
                }),
                barabasi_albert(BarabasiAlbertParams {
                    n: 400,
                    m: 3,
                    seed: 6,
                }),
            ),
            (
                "weblike",
                Box::new(|el: &mut EdgeList| {
                    weblike_stream(WeblikeParams::web(600, 8), el).unwrap();
                }),
                weblike(WeblikeParams::web(600, 8)),
            ),
        ];
        for (name, stream, expected) in cases {
            let mut el = EdgeList::new(expected.graph.num_vertices() as u64);
            stream(&mut el);
            assert_eq!(
                Csr::from_edge_list(el),
                expected.graph,
                "{name}: streamed edges differ from the in-memory generator"
            );
        }
    }

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = power_law_sample(&mut rng, 2.5, 10, 50);
            assert!((10..=50).contains(&k));
        }
    }

    #[test]
    fn power_law_is_heavy_at_low_end() {
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| power_law_sample(&mut rng, 2.5, 10, 100))
            .collect();
        let low = samples.iter().filter(|&&k| k <= 20).count();
        let high = samples.iter().filter(|&&k| k >= 80).count();
        assert!(low > 5 * high, "low={low} high={high}");
    }

    #[test]
    fn power_law_degenerate_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(power_law_sample(&mut rng, 2.0, 7, 7), 7);
    }
}
