//! Synthetic graph generators.
//!
//! These stand in for the paper's workloads (see DESIGN.md §2):
//!
//! | generator | paper workload it substitutes |
//! |---|---|
//! | [`lfr`] | LFR benchmark graphs with ground truth (Table VII) |
//! | [`ssca2`] | GTgraph SSCA#2 weak-scaling graphs (Table V, Fig 4) |
//! | [`rmat`] | social networks: com-orkut, twitter-2010, soc-friendster, soc-sinaweibo |
//! | [`banded`] | mesh/banded matrices: channel, nlpkkt240 |
//! | [`weblike`] | web crawls: uk-2007, sk-2005, arabic-2005, webbase-2001, web-* |
//! | [`erdos_renyi`] | unstructured noise (tests) |
//!
//! All generators are deterministic in `(params, seed)`.

mod banded;
mod erdos_renyi;
mod grid;
mod lfr;
mod preferential;
mod rmat;
mod smallworld;
mod ssca2;
mod weblike;

pub use banded::{banded, BandedParams};
pub use erdos_renyi::{erdos_renyi, ErdosRenyiParams};
pub use grid::{grid3d, Grid3dParams};
pub use lfr::{lfr, LfrParams};
pub use preferential::{barabasi_albert, BarabasiAlbertParams};
pub use rmat::{rmat, RmatParams};
pub use smallworld::{watts_strogatz, WattsStrogatzParams};
pub use ssca2::{ssca2, Ssca2Params};
pub use weblike::{weblike, WeblikeParams};

use rand::Rng;

use crate::community::CommunityAssignment;
use crate::csr::Csr;

/// A generated graph, optionally with the planted ("ground truth")
/// community structure used for quality assessment.
#[derive(Debug, Clone)]
pub struct Generated {
    pub graph: Csr,
    pub ground_truth: Option<CommunityAssignment>,
}

/// Sample an integer from a bounded discrete power law `P(k) ∝ k^(−tau)`,
/// `k ∈ [lo, hi]`, by inverse transform on the continuous distribution.
pub(crate) fn power_law_sample(rng: &mut impl Rng, tau: f64, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo >= 1 && hi >= lo);
    if lo == hi {
        return lo;
    }
    let u: f64 = rng.random();
    let one_minus = 1.0 - tau;
    let k = if one_minus.abs() < 1e-9 {
        // tau == 1: log-uniform.
        (lo as f64) * ((hi as f64) / (lo as f64)).powf(u)
    } else {
        let lo_p = (lo as f64).powf(one_minus);
        let hi_p = (hi as f64).powf(one_minus);
        (lo_p + u * (hi_p - lo_p)).powf(1.0 / one_minus)
    };
    (k.round() as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let k = power_law_sample(&mut rng, 2.5, 10, 50);
            assert!((10..=50).contains(&k));
        }
    }

    #[test]
    fn power_law_is_heavy_at_low_end() {
        let mut rng = SmallRng::seed_from_u64(2);
        let samples: Vec<u64> = (0..20_000)
            .map(|_| power_law_sample(&mut rng, 2.5, 10, 100))
            .collect();
        let low = samples.iter().filter(|&&k| k <= 20).count();
        let high = samples.iter().filter(|&&k| k >= 80).count();
        assert!(low > 5 * high, "low={low} high={high}");
    }

    #[test]
    fn power_law_degenerate_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(power_law_sample(&mut rng, 2.0, 7, 7), 7);
    }
}
