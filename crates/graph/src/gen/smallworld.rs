//! Watts–Strogatz small-world generator: a ring lattice with random
//! rewiring. Useful as a controlled testbed — high clustering at low
//! rewiring probability, approaching a random graph as `beta → 1`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::Generated;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;

/// Parameters for [`watts_strogatz`].
#[derive(Debug, Clone, Copy)]
pub struct WattsStrogatzParams {
    pub n: u64,
    /// Each vertex connects to `k` nearest ring neighbors on each side
    /// (total initial degree `2k`).
    pub k: u64,
    /// Rewiring probability per edge.
    pub beta: f64,
    pub seed: u64,
}

/// Generate a Watts–Strogatz graph.
pub fn watts_strogatz(p: WattsStrogatzParams) -> Generated {
    let mut el = EdgeList::new(p.n);
    watts_strogatz_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: None,
    }
}

/// Emit the Watts–Strogatz edge stream into `sink` in O(1) carried
/// state. [`watts_strogatz`] is this loop collected into an
/// [`EdgeList`], so both paths see the identical edge sequence.
pub fn watts_strogatz_stream(
    p: WattsStrogatzParams,
    sink: &mut impl EdgeSink,
) -> Result<(), IngestError> {
    assert!(p.n > 2 * p.k, "ring too small for k");
    assert!((0.0..=1.0).contains(&p.beta));
    let mut rng = SmallRng::seed_from_u64(p.seed);
    for v in 0..p.n {
        for d in 1..=p.k {
            let mut u = (v + d) % p.n;
            if rng.random::<f64>() < p.beta {
                // Rewire the far endpoint to a uniform random vertex.
                loop {
                    u = rng.random_range(0..p.n);
                    if u != v {
                        break;
                    }
                }
            }
            sink.edge(v, u, 1.0)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::clustering_coefficient;

    #[test]
    fn zero_beta_is_a_ring_lattice() {
        let g = watts_strogatz(WattsStrogatzParams {
            n: 100,
            k: 3,
            beta: 0.0,
            seed: 1,
        })
        .graph;
        for v in 0..100u64 {
            assert_eq!(g.degree(v), 6, "vertex {v}");
        }
    }

    #[test]
    fn low_beta_keeps_high_clustering() {
        let low = watts_strogatz(WattsStrogatzParams {
            n: 2_000,
            k: 5,
            beta: 0.05,
            seed: 2,
        });
        let high = watts_strogatz(WattsStrogatzParams {
            n: 2_000,
            k: 5,
            beta: 1.0,
            seed: 2,
        });
        let c_low = clustering_coefficient(&low.graph);
        let c_high = clustering_coefficient(&high.graph);
        assert!(c_low > 3.0 * c_high, "c_low={c_low} c_high={c_high}");
    }

    #[test]
    fn deterministic() {
        let p = WattsStrogatzParams {
            n: 500,
            k: 4,
            beta: 0.2,
            seed: 9,
        };
        assert_eq!(watts_strogatz(p).graph, watts_strogatz(p).graph);
    }
}
