//! 3D grid (stencil) generator — the faithful stand-in for the paper's
//! mesh inputs: `channel` is a 3D channel-flow mesh and `nlpkkt240` a
//! 3D PDE-constrained KKT system. On a 3D grid, communities are compact
//! blocks with small surface-to-volume ratio, which is what gives those
//! graphs their ~0.94 modularity (a 1D band over-merges instead).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::Generated;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;

/// Parameters for [`grid3d`].
#[derive(Debug, Clone, Copy)]
pub struct Grid3dParams {
    pub nx: u64,
    pub ny: u64,
    pub nz: u64,
    /// Include the 12 edge-diagonal neighbors (in addition to the 6 face
    /// neighbors), as banded stencil matrices do.
    pub diagonals: bool,
    /// Fraction of stencil edges kept (1.0 = full stencil).
    pub fill: f64,
    pub seed: u64,
}

impl Grid3dParams {
    /// A roughly cubic grid with ~`n` vertices, 6-point stencil plus
    /// diagonals, 95% fill (channel-flow-like).
    pub fn cube(n: u64, seed: u64) -> Self {
        let side = (n as f64).cbrt().round().max(2.0) as u64;
        Self {
            nx: side,
            ny: side,
            nz: side,
            diagonals: true,
            fill: 0.95,
            seed,
        }
    }
}

/// Generate a 3D grid graph.
pub fn grid3d(p: Grid3dParams) -> Generated {
    let mut el = EdgeList::new(p.nx * p.ny * p.nz);
    grid3d_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: None,
    }
}

/// Emit the 3D-grid edge stream into `sink` in O(1) carried state.
/// [`grid3d`] is this loop collected into an [`EdgeList`], so both
/// paths see the identical edge sequence.
pub fn grid3d_stream(p: Grid3dParams, sink: &mut impl EdgeSink) -> Result<(), IngestError> {
    assert!(p.nx >= 1 && p.ny >= 1 && p.nz >= 1);
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let idx = |x: u64, y: u64, z: u64| (z * p.ny + y) * p.nx + x;
    // Face neighbors (+x, +y, +z) and optionally the +-diagonals in each
    // coordinate plane; each undirected edge emitted once.
    let mut offsets: Vec<(i64, i64, i64)> = vec![(1, 0, 0), (0, 1, 0), (0, 0, 1)];
    if p.diagonals {
        offsets.extend([
            (1, 1, 0),
            (1, -1, 0),
            (1, 0, 1),
            (1, 0, -1),
            (0, 1, 1),
            (0, 1, -1),
        ]);
    }
    for z in 0..p.nz {
        for y in 0..p.ny {
            for x in 0..p.nx {
                for &(dx, dy, dz) in &offsets {
                    let (xx, yy, zz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if xx < 0 || yy < 0 || zz < 0 {
                        continue;
                    }
                    let (xx, yy, zz) = (xx as u64, yy as u64, zz as u64);
                    if xx >= p.nx || yy >= p.ny || zz >= p.nz {
                        continue;
                    }
                    // Keep face neighbors unconditionally for connectivity.
                    let is_face = dy == 0 && dz == 0 || dx == 0 && (dy == 0 || dz == 0);
                    if is_face || rng.random::<f64>() < p.fill {
                        sink.edge(idx(x, y, z), idx(xx, yy, zz), 1.0)?;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_has_requested_size() {
        let g = grid3d(Grid3dParams::cube(1_000, 1)).graph;
        assert_eq!(g.num_vertices(), 1_000);
    }

    #[test]
    fn face_stencil_degree_is_six_in_interior() {
        let p = Grid3dParams {
            nx: 5,
            ny: 5,
            nz: 5,
            diagonals: false,
            fill: 1.0,
            seed: 1,
        };
        let g = grid3d(p).graph;
        // Center vertex of the 5³ cube.
        let center = (2 * 5 + 2) * 5 + 2;
        assert_eq!(g.degree(center), 6);
        // Corner vertex has 3 neighbors.
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn diagonals_increase_density() {
        let base = Grid3dParams {
            nx: 6,
            ny: 6,
            nz: 6,
            diagonals: false,
            fill: 1.0,
            seed: 1,
        };
        let diag = Grid3dParams {
            diagonals: true,
            ..base
        };
        assert!(grid3d(diag).graph.num_edges() > grid3d(base).graph.num_edges());
    }

    #[test]
    fn deterministic() {
        let p = Grid3dParams::cube(500, 5);
        assert_eq!(grid3d(p).graph, grid3d(p).graph);
    }

    #[test]
    fn connected_along_axes() {
        let g = grid3d(Grid3dParams {
            nx: 4,
            ny: 3,
            nz: 2,
            diagonals: true,
            fill: 0.5,
            seed: 2,
        })
        .graph;
        // +x face edges always kept: vertex 0 connects to 1.
        assert!(g.neighbors(0).any(|(v, _)| v == 1));
    }
}
