//! Erdős–Rényi random graphs (no community structure; used as a negative
//! control in tests — modularity found on them should be low).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::Generated;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::{CountingSink, EdgeSink};

/// Parameters for [`erdos_renyi`].
#[derive(Debug, Clone, Copy)]
pub struct ErdosRenyiParams {
    pub n: u64,
    /// Target average degree (undirected).
    pub avg_degree: f64,
    pub seed: u64,
}

/// Sample `n·avg_degree/2` uniformly random edges (duplicates merged,
/// self-loops skipped).
pub fn erdos_renyi(p: ErdosRenyiParams) -> Generated {
    let mut el = EdgeList::new(p.n);
    erdos_renyi_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: None,
    }
}

/// Emit the Erdős–Rényi edge stream into `sink` in O(1) carried state
/// (the accepted-edge count replaces `EdgeList::num_edges`).
/// [`erdos_renyi`] is this loop collected into an [`EdgeList`], so both
/// paths see the identical edge sequence.
pub fn erdos_renyi_stream(
    p: ErdosRenyiParams,
    sink: &mut impl EdgeSink,
) -> Result<(), IngestError> {
    assert!(p.n >= 2);
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let m = ((p.n as f64) * p.avg_degree / 2.0).round() as u64;
    let mut counted = CountingSink::new(sink);
    while counted.edges() < m {
        let u = rng.random_range(0..p.n);
        let v = rng.random_range(0..p.n);
        if u != v {
            counted.edge(u, v, 1.0)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_is_close() {
        let g = erdos_renyi(ErdosRenyiParams {
            n: 2_000,
            avg_degree: 10.0,
            seed: 42,
        })
        .graph;
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!((avg - 10.0).abs() < 1.0, "avg = {avg}");
    }

    #[test]
    fn deterministic_in_seed() {
        let p = ErdosRenyiParams {
            n: 500,
            avg_degree: 6.0,
            seed: 7,
        };
        let a = erdos_renyi(p).graph;
        let b = erdos_renyi(p).graph;
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(ErdosRenyiParams {
            n: 500,
            avg_degree: 6.0,
            seed: 1,
        })
        .graph;
        let b = erdos_renyi(ErdosRenyiParams {
            n: 500,
            avg_degree: 6.0,
            seed: 2,
        })
        .graph;
        assert_ne!(a, b);
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(ErdosRenyiParams {
            n: 300,
            avg_degree: 8.0,
            seed: 3,
        })
        .graph;
        for v in 0..g.num_vertices() as u64 {
            assert_eq!(g.self_loop(v), 0.0);
        }
    }
}
