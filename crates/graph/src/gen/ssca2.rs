//! GTgraph SSCA#2 generator (DARPA HPCS graph analysis benchmark).
//!
//! The paper's weak-scaling study (Table V, Fig 4) uses SSCA#2 graphs:
//! "comprised of random-sized cliques, with various parameters to control
//! the amount of vertex connections and inter-clique edges … we fix the
//! maximum clique size … and deliberately keep inter-clique edge
//! probability low to enforce good community structure." Those graphs
//! reach modularity 0.9999+ — this generator reproduces that.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::Generated;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;
use crate::VertexId;

/// Parameters for [`ssca2`].
#[derive(Debug, Clone, Copy)]
pub struct Ssca2Params {
    /// Total number of vertices.
    pub n: u64,
    /// Cliques have uniform random size in `1..=max_clique_size`
    /// (the paper fixes this to 100).
    pub max_clique_size: u64,
    /// Probability that a pair of consecutive cliques is linked by one
    /// inter-clique edge (kept low to enforce community structure).
    pub inter_clique_prob: f64,
    pub seed: u64,
}

impl Ssca2Params {
    /// The paper's configuration, scaled by `n`.
    pub fn paper(n: u64, seed: u64) -> Self {
        Self {
            n,
            max_clique_size: 100,
            inter_clique_prob: 0.05,
            seed,
        }
    }
}

/// Generate an SSCA#2 graph. Ground truth = the cliques.
pub fn ssca2(p: Ssca2Params) -> Generated {
    let mut el = EdgeList::new(p.n);
    let clique_of = ssca2_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: Some(clique_of),
    }
}

/// Emit the SSCA#2 edge stream into `sink`, returning the ground-truth
/// clique assignment. Carried state is O(#cliques + n) for the clique
/// table and ground truth — no edge is ever materialized. [`ssca2`] is
/// this loop collected into an [`EdgeList`], so both paths see the
/// identical edge sequence.
pub fn ssca2_stream(
    p: Ssca2Params,
    sink: &mut impl EdgeSink,
) -> Result<Vec<VertexId>, IngestError> {
    assert!(p.n >= 1 && p.max_clique_size >= 1);
    let mut rng = SmallRng::seed_from_u64(p.seed);

    // Carve vertices into random-sized cliques.
    let mut clique_of: Vec<VertexId> = Vec::with_capacity(p.n as usize);
    let mut cliques: Vec<(u64, u64)> = Vec::new(); // (first, size)
    let mut v = 0u64;
    let mut cid = 0u64;
    while v < p.n {
        let size = rng.random_range(1..=p.max_clique_size).min(p.n - v);
        cliques.push((v, size));
        for _ in 0..size {
            clique_of.push(cid);
        }
        v += size;
        cid += 1;
    }

    // All intra-clique pairs.
    for &(first, size) in &cliques {
        for i in 0..size {
            for j in (i + 1)..size {
                sink.edge(first + i, first + j, 1.0)?;
            }
        }
    }
    // Sparse inter-clique edges between consecutive cliques (plus a few
    // long-range links so the graph does not decompose by construction).
    for w in cliques.windows(2) {
        let (f0, s0) = w[0];
        let (f1, s1) = w[1];
        if rng.random::<f64>() < p.inter_clique_prob {
            let a = f0 + rng.random_range(0..s0);
            let b = f1 + rng.random_range(0..s1);
            sink.edge(a, b, 1.0)?;
        }
    }
    let nc = cliques.len();
    if nc > 2 {
        let long_range = (nc as f64 * p.inter_clique_prob * 0.2).round() as usize;
        for _ in 0..long_range {
            let ci = rng.random_range(0..nc);
            let cj = rng.random_range(0..nc);
            if ci == cj {
                continue;
            }
            let (fi, si) = cliques[ci];
            let (fj, sj) = cliques[cj];
            sink.edge(
                fi + rng.random_range(0..si),
                fj + rng.random_range(0..sj),
                1.0,
            )?;
        }
    }
    Ok(clique_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::modularity;

    #[test]
    fn cliques_are_complete() {
        let g = ssca2(Ssca2Params {
            n: 500,
            max_clique_size: 20,
            inter_clique_prob: 0.0,
            seed: 3,
        });
        let gt = g.ground_truth.as_ref().unwrap();
        // With zero inter-clique probability every edge is internal.
        for u in 0..g.graph.num_vertices() as u64 {
            for (v, _) in g.graph.neighbors(u) {
                assert_eq!(gt[u as usize], gt[v as usize]);
            }
        }
    }

    #[test]
    fn near_perfect_modularity_with_low_inter_prob() {
        let g = ssca2(Ssca2Params {
            n: 5_000,
            max_clique_size: 40,
            inter_clique_prob: 0.05,
            seed: 8,
        });
        let q = modularity(&g.graph, g.ground_truth.as_ref().unwrap());
        assert!(q > 0.95, "q = {q}");
    }

    #[test]
    fn covers_all_vertices() {
        let g = ssca2(Ssca2Params::paper(1_234, 6));
        assert_eq!(g.graph.num_vertices(), 1_234);
        assert_eq!(g.ground_truth.unwrap().len(), 1_234);
    }

    #[test]
    fn deterministic() {
        let p = Ssca2Params::paper(600, 10);
        assert_eq!(ssca2(p).graph, ssca2(p).graph);
    }

    #[test]
    fn clique_sizes_bounded() {
        let g = ssca2(Ssca2Params {
            n: 2_000,
            max_clique_size: 15,
            inter_clique_prob: 0.1,
            seed: 1,
        });
        let gt = g.ground_truth.unwrap();
        let mut sizes = std::collections::HashMap::new();
        for &c in &gt {
            *sizes.entry(c).or_insert(0u64) += 1;
        }
        assert!(sizes.values().all(|&s| s <= 15));
    }
}
