//! Web-crawl-like generator — stand-in for uk-2007, sk-2005, arabic-2005,
//! webbase-2001 and the web-* graphs of Table II: power-law-sized dense
//! host clusters, sparse inter-host links, very high modularity (≥0.95).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{power_law_sample, Generated};
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;
use crate::VertexId;

/// Parameters for [`weblike`].
#[derive(Debug, Clone, Copy)]
pub struct WeblikeParams {
    /// Approximate number of vertices (rounded up to whole clusters).
    pub n: u64,
    /// Cluster ("host") size bounds; sizes follow a power law with
    /// exponent `tau`.
    pub min_cluster: u64,
    pub max_cluster: u64,
    pub tau: f64,
    /// Average intra-cluster degree (a ring plus random chords).
    pub intra_degree: f64,
    /// Number of inter-cluster edges per cluster.
    pub inter_edges: u64,
    pub seed: u64,
}

impl WeblikeParams {
    /// uk-2007-like defaults at a given scale.
    pub fn web(n: u64, seed: u64) -> Self {
        Self {
            n,
            min_cluster: 8,
            max_cluster: 256,
            tau: 2.0,
            intra_degree: 10.0,
            inter_edges: 2,
            seed,
        }
    }
}

/// Generate a web-like clustered graph. Ground truth = host clusters.
pub fn weblike(p: WeblikeParams) -> Generated {
    let mut el = EdgeList::new(p.n);
    let cluster_of = weblike_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: Some(cluster_of),
    }
}

/// Emit the web-like edge stream into `sink`, returning the ground-truth
/// cluster assignment. Carried state is O(#clusters + n) for the bounds
/// table and ground truth. [`weblike`] is this loop collected into an
/// [`EdgeList`], so both paths see the identical edge sequence.
pub fn weblike_stream(
    p: WeblikeParams,
    sink: &mut impl EdgeSink,
) -> Result<Vec<VertexId>, IngestError> {
    assert!(p.n >= p.min_cluster && p.min_cluster >= 2);
    let mut rng = SmallRng::seed_from_u64(p.seed);

    // Carve vertices into power-law-sized clusters.
    let mut cluster_of: Vec<VertexId> = Vec::with_capacity(p.n as usize);
    let mut bounds: Vec<(u64, u64)> = Vec::new(); // (first, size)
    let mut v = 0u64;
    let mut cid = 0u64;
    while v < p.n {
        let size = power_law_sample(&mut rng, p.tau, p.min_cluster, p.max_cluster)
            .min(p.n - v)
            .max(1);
        bounds.push((v, size));
        for _ in 0..size {
            cluster_of.push(cid);
        }
        v += size;
        cid += 1;
    }

    // Intra-cluster: a ring for connectivity plus random chords up to the
    // requested average degree.
    for &(first, size) in &bounds {
        if size == 1 {
            continue;
        }
        for i in 0..size {
            sink.edge(first + i, first + (i + 1) % size, 1.0)?;
        }
        let extra = ((p.intra_degree - 2.0).max(0.0) * size as f64 / 2.0).round() as u64;
        for _ in 0..extra {
            let a = first + rng.random_range(0..size);
            let b = first + rng.random_range(0..size);
            if a != b {
                sink.edge(a, b, 1.0)?;
            }
        }
    }

    // Inter-cluster links (sparse).
    let nc = bounds.len();
    if nc > 1 {
        for (ci, &(first, size)) in bounds.iter().enumerate() {
            for _ in 0..p.inter_edges {
                let cj = rng.random_range(0..nc - 1);
                let cj = if cj >= ci { cj + 1 } else { cj };
                let (ofirst, osize) = bounds[cj];
                let a = first + rng.random_range(0..size);
                let b = ofirst + rng.random_range(0..osize);
                sink.edge(a, b, 1.0)?;
            }
        }
    }

    Ok(cluster_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::modularity;

    #[test]
    fn planted_structure_has_high_modularity() {
        let g = weblike(WeblikeParams::web(5_000, 11));
        let q = modularity(&g.graph, g.ground_truth.as_ref().unwrap());
        assert!(q > 0.9, "q = {q}");
    }

    #[test]
    fn cluster_sizes_within_bounds() {
        let g = weblike(WeblikeParams::web(3_000, 4));
        let gt = g.ground_truth.unwrap();
        let mut sizes = std::collections::HashMap::new();
        for &c in &gt {
            *sizes.entry(c).or_insert(0u64) += 1;
        }
        for (&c, &s) in &sizes {
            assert!(s <= 256, "cluster {c} has size {s}");
        }
        assert!(sizes.len() > 10);
    }

    #[test]
    fn ground_truth_len_matches_graph() {
        let g = weblike(WeblikeParams::web(1_000, 2));
        assert_eq!(g.graph.num_vertices(), g.ground_truth.unwrap().len());
    }

    #[test]
    fn deterministic() {
        let p = WeblikeParams::web(800, 13);
        assert_eq!(weblike(p).graph, weblike(p).graph);
    }
}
