//! RMAT (recursive matrix) generator — the standard model for scale-free
//! social networks. Stand-in for com-orkut / twitter-2010 / soc-friendster /
//! soc-sinaweibo in the paper's Table II: heavy-tailed degrees and weak
//! community structure (Louvain modularity around 0.4–0.5).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::Generated;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;

/// Parameters for [`rmat`].
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// `n = 2^scale` vertices.
    pub scale: u32,
    /// `m = n · edge_factor` undirected edges sampled.
    pub edge_factor: u32,
    /// Quadrant probabilities; must sum to ~1. Graph500 uses
    /// (0.57, 0.19, 0.19, 0.05).
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub seed: u64,
}

impl RmatParams {
    /// Graph500-style socials: a=0.57 b=0.19 c=0.19 d=0.05.
    pub fn social(scale: u32, edge_factor: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }
}

/// Generate an RMAT graph. Duplicate edges are merged, self-loops skipped.
pub fn rmat(p: RmatParams) -> Generated {
    let mut el = EdgeList::new(1 << p.scale);
    rmat_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: None,
    }
}

/// Emit the RMAT edge stream into `sink` in bounded memory: O(1) state
/// beyond the quadrant descent. [`rmat`] is this loop collected into an
/// [`EdgeList`], so both paths see the identical edge sequence.
pub fn rmat_stream(p: RmatParams, sink: &mut impl EdgeSink) -> Result<(), IngestError> {
    let n: u64 = 1 << p.scale;
    let m = n * p.edge_factor as u64;
    let d = 1.0 - p.a - p.b - p.c;
    assert!(d >= 0.0, "quadrant probabilities exceed 1");
    let mut rng = SmallRng::seed_from_u64(p.seed);
    for _ in 0..m {
        let (mut u, mut v) = (0u64, 0u64);
        for level in (0..p.scale).rev() {
            let r: f64 = rng.random();
            let bit = 1u64 << level;
            if r < p.a {
                // top-left: no bits
            } else if r < p.a + p.b {
                v |= bit;
            } else if r < p.a + p.b + p.c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        if u != v {
            sink.edge(u, v, 1.0)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_as_requested() {
        let g = rmat(RmatParams::social(10, 8, 5)).graph;
        assert_eq!(g.num_vertices(), 1024);
        // Some duplicates collapse; expect most of the 8192 sampled edges.
        assert!(g.num_edges() > 4000, "edges = {}", g.num_edges());
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = rmat(RmatParams::social(12, 8, 9)).graph;
        let mut degs: Vec<usize> = (0..g.num_vertices()).map(|v| g.degree(v as u64)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // The top vertex should have degree far above the average.
        let avg = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(degs[0] as f64 > 10.0 * avg, "max={} avg={avg}", degs[0]);
    }

    #[test]
    fn deterministic() {
        let p = RmatParams::social(9, 4, 77);
        assert_eq!(rmat(p).graph, rmat(p).graph);
    }
}
