//! LFR benchmark generator (Lancichinetti–Fortunato–Radicchi 2008).
//!
//! The paper's quality assessment (Table VII) compares distributed Louvain
//! output to LFR ground truth via precision/recall/F-score. LFR graphs
//! have power-law degree distribution (exponent τ₁), power-law community
//! sizes (exponent τ₂), and a mixing parameter μ giving the fraction of
//! each vertex's edges that leave its community.
//!
//! This implementation uses stub matching (configuration model) within and
//! between communities, discarding self-loops and merging multi-edges —
//! the standard practical construction.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use super::{power_law_sample, Generated};
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;
use crate::VertexId;

/// Parameters for [`lfr`].
#[derive(Debug, Clone, Copy)]
pub struct LfrParams {
    pub n: u64,
    /// Degree power-law exponent (typically 2–3).
    pub tau1: f64,
    /// Community-size power-law exponent (typically 1–2).
    pub tau2: f64,
    /// Mixing parameter: fraction of each vertex's edges that are
    /// inter-community. μ=0 yields perfect communities only when
    /// `max_degree < min_community` (the classic LFR feasibility
    /// constraint) — otherwise the overflow degree spills outward.
    pub mu: f64,
    pub min_degree: u64,
    pub max_degree: u64,
    pub min_community: u64,
    pub max_community: u64,
    pub seed: u64,
}

impl LfrParams {
    /// Defaults matching common LFR usage (μ=0.1, τ₁=2.5, τ₂=1.5).
    pub fn small(n: u64, seed: u64) -> Self {
        Self {
            n,
            tau1: 2.5,
            tau2: 1.5,
            mu: 0.1,
            min_degree: 8,
            max_degree: 50,
            min_community: 20,
            max_community: 100,
            seed,
        }
    }
}

/// Generate an LFR graph with ground-truth communities.
pub fn lfr(p: LfrParams) -> Generated {
    let mut el = EdgeList::new(p.n);
    let community = lfr_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: Some(community),
    }
}

/// Emit the LFR edge stream into `sink`, returning the ground-truth
/// community assignment. Stub matching is inherently global, so this
/// carries O(n + m) working state (degree, membership, and stub
/// arrays) — it avoids a second resident copy of the edges, not the
/// model state. [`lfr`] is this loop collected into an [`EdgeList`],
/// so both paths see the identical edge sequence.
pub fn lfr_stream(p: LfrParams, sink: &mut impl EdgeSink) -> Result<Vec<VertexId>, IngestError> {
    assert!(p.n >= p.min_community, "graph smaller than one community");
    assert!((0.0..=1.0).contains(&p.mu));
    let mut rng = SmallRng::seed_from_u64(p.seed);
    let n = p.n as usize;

    // 1. Power-law degrees.
    let degrees: Vec<u64> = (0..n)
        .map(|_| power_law_sample(&mut rng, p.tau1, p.min_degree, p.max_degree))
        .collect();

    // 2. Power-law community sizes covering all vertices.
    let mut sizes: Vec<u64> = Vec::new();
    let mut covered = 0u64;
    while covered < p.n {
        let mut s = power_law_sample(&mut rng, p.tau2, p.min_community, p.max_community);
        if p.n - covered < p.min_community {
            // Fold the remainder into the last community.
            if let Some(last) = sizes.last_mut() {
                *last += p.n - covered;
            } else {
                s = p.n - covered;
                sizes.push(s);
            }
            break;
        }
        s = s.min(p.n - covered);
        sizes.push(s);
        covered += s;
    }

    // 3. Assign shuffled vertices to communities.
    let mut order: Vec<VertexId> = (0..p.n).collect();
    order.shuffle(&mut rng);
    let mut community = vec![0 as VertexId; n];
    let mut members: Vec<Vec<VertexId>> = Vec::with_capacity(sizes.len());
    let mut cursor = 0usize;
    for (cid, &s) in sizes.iter().enumerate() {
        let slice = &order[cursor..cursor + s as usize];
        for &v in slice {
            community[v as usize] = cid as VertexId;
        }
        members.push(slice.to_vec());
        cursor += s as usize;
    }

    // 4. Split each degree into internal / external parts.
    let mut internal = vec![0u64; n];
    let mut external = vec![0u64; n];
    for v in 0..n {
        let cap = sizes[community[v] as usize].saturating_sub(1);
        let want = ((1.0 - p.mu) * degrees[v] as f64).round() as u64;
        internal[v] = want.min(cap);
        external[v] = degrees[v] - internal[v];
    }

    // 5. Intra-community stub matching.
    for group in &members {
        let mut stubs: Vec<VertexId> = Vec::new();
        for &v in group {
            for _ in 0..internal[v as usize] {
                stubs.push(v);
            }
        }
        if stubs.len() % 2 == 1 {
            stubs.pop();
        }
        stubs.shuffle(&mut rng);
        for pair in stubs.chunks_exact(2) {
            if pair[0] != pair[1] {
                sink.edge(pair[0], pair[1], 1.0)?;
            }
        }
    }

    // 6. Inter-community stub matching (re-draw pairs landing in the same
    // community a bounded number of times).
    let mut stubs: Vec<VertexId> = Vec::new();
    for (v, &ext) in external.iter().enumerate() {
        for _ in 0..ext {
            stubs.push(v as VertexId);
        }
    }
    stubs.shuffle(&mut rng);
    let mut i = 0;
    while i + 1 < stubs.len() {
        let a = stubs[i];
        let mut j = i + 1;
        // Find a partner in a different community among the next few stubs.
        let mut found = false;
        while j < stubs.len().min(i + 64) {
            if community[stubs[j] as usize] != community[a as usize] {
                found = true;
                break;
            }
            j += 1;
        }
        if found {
            sink.edge(a, stubs[j], 1.0)?;
            stubs.swap(i + 1, j);
            i += 2;
        } else {
            i += 1; // orphan stub; drop it
        }
    }

    Ok(community)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::modularity;

    #[test]
    fn sizes_match() {
        let g = lfr(LfrParams::small(2_000, 1));
        assert_eq!(g.graph.num_vertices(), 2_000);
        assert_eq!(g.ground_truth.as_ref().unwrap().len(), 2_000);
    }

    #[test]
    fn planted_communities_have_high_modularity_at_low_mu() {
        let g = lfr(LfrParams::small(3_000, 2));
        let q = modularity(&g.graph, g.ground_truth.as_ref().unwrap());
        assert!(q > 0.6, "q = {q}");
    }

    #[test]
    fn mixing_parameter_controls_external_fraction() {
        let params = LfrParams {
            mu: 0.2,
            ..LfrParams::small(3_000, 3)
        };
        let g = lfr(params);
        let gt = g.ground_truth.as_ref().unwrap();
        let mut external = 0u64;
        let mut total = 0u64;
        for u in 0..g.graph.num_vertices() as u64 {
            for (v, _) in g.graph.neighbors(u) {
                total += 1;
                if gt[u as usize] != gt[v as usize] {
                    external += 1;
                }
            }
        }
        let frac = external as f64 / total as f64;
        assert!((frac - 0.2).abs() < 0.08, "external fraction = {frac}");
    }

    #[test]
    fn community_sizes_bounded() {
        let g = lfr(LfrParams::small(4_000, 4));
        let gt = g.ground_truth.unwrap();
        let mut sizes = std::collections::HashMap::new();
        for &c in &gt {
            *sizes.entry(c).or_insert(0u64) += 1;
        }
        for (&c, &s) in &sizes {
            assert!(s >= 20, "community {c} too small: {s}");
            // max_community plus a possible folded remainder.
            assert!(s <= 100 + 20, "community {c} too large: {s}");
        }
    }

    #[test]
    fn degrees_respect_bounds_roughly() {
        let g = lfr(LfrParams::small(2_000, 5)).graph;
        let avg: f64 = (0..g.num_vertices())
            .map(|v| g.degree(v as u64))
            .sum::<usize>() as f64
            / g.num_vertices() as f64;
        // Power law between 8 and 50 with τ=2.5 has mean ≈ 13-16; stub
        // dropping loses a little.
        assert!(avg > 8.0 && avg < 25.0, "avg = {avg}");
    }

    #[test]
    fn deterministic() {
        let p = LfrParams::small(1_000, 9);
        assert_eq!(lfr(p).graph, lfr(p).graph);
    }

    #[test]
    fn mu_zero_has_no_external_edges() {
        // μ=0 is only feasible when max_degree < min_community.
        let params = LfrParams {
            mu: 0.0,
            max_degree: 15,
            ..LfrParams::small(1_500, 6)
        };
        let g = lfr(params);
        let gt = g.ground_truth.as_ref().unwrap();
        for u in 0..g.graph.num_vertices() as u64 {
            for (v, _) in g.graph.neighbors(u) {
                assert_eq!(gt[u as usize], gt[v as usize], "external edge {u}-{v}");
            }
        }
    }
}
