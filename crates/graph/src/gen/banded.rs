//! Banded-mesh generator — stand-in for `channel` (3D flow mesh) and
//! `nlpkkt240` (KKT matrix) in the paper: regular, banded structure with
//! near-uniform degree and very high modularity (~0.94). Table I observes
//! that the early-termination heuristic gains the most on exactly this
//! structure (58× on Channel), because vertices settle quickly and stay.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::Generated;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;

/// Parameters for [`banded`].
#[derive(Debug, Clone, Copy)]
pub struct BandedParams {
    pub n: u64,
    /// Each vertex connects to neighbors within this index distance.
    pub bandwidth: u64,
    /// Fraction of band edges kept (1.0 = full band, lower adds
    /// irregularity like a real mesh).
    pub fill: f64,
    pub seed: u64,
}

impl BandedParams {
    /// A channel-flow-like band: width 8, 90% fill.
    pub fn channel_like(n: u64, seed: u64) -> Self {
        Self {
            n,
            bandwidth: 8,
            fill: 0.9,
            seed,
        }
    }
}

/// Generate a banded graph: edges `(v, v+d)` for `d ∈ 1..=bandwidth`,
/// each kept with probability `fill`.
pub fn banded(p: BandedParams) -> Generated {
    let mut el = EdgeList::new(p.n);
    banded_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: None,
    }
}

/// Emit the banded edge stream into `sink` in O(1) carried state.
/// [`banded`] is this loop collected into an [`EdgeList`], so both
/// paths see the identical edge sequence.
pub fn banded_stream(p: BandedParams, sink: &mut impl EdgeSink) -> Result<(), IngestError> {
    assert!(p.n >= 2 && p.bandwidth >= 1);
    let mut rng = SmallRng::seed_from_u64(p.seed);
    for v in 0..p.n {
        for d in 1..=p.bandwidth {
            let u = v + d;
            if u >= p.n {
                break;
            }
            // Always keep the immediate neighbor so the band stays connected.
            if d == 1 || rng.random::<f64>() < p.fill {
                sink.edge(v, u, 1.0)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_band_has_expected_edges() {
        let g = banded(BandedParams {
            n: 100,
            bandwidth: 3,
            fill: 1.0,
            seed: 1,
        })
        .graph;
        // Σ_{d=1..3} (n - d) = 99 + 98 + 97.
        assert_eq!(g.num_edges(), 99 + 98 + 97);
    }

    #[test]
    fn band_is_connected_chain() {
        let g = banded(BandedParams {
            n: 50,
            bandwidth: 4,
            fill: 0.5,
            seed: 2,
        })
        .graph;
        for v in 0..49u64 {
            let has_next = g.neighbors(v).any(|(u, _)| u == v + 1);
            assert!(has_next, "missing chain edge at {v}");
        }
    }

    #[test]
    fn degrees_are_near_uniform() {
        let g = banded(BandedParams::channel_like(1000, 3)).graph;
        let interior: Vec<usize> = (20..980).map(|v| g.degree(v as u64)).collect();
        let min = *interior.iter().min().unwrap();
        let max = *interior.iter().max().unwrap();
        assert!(max <= 2 * 8 && min >= 4, "min={min} max={max}");
    }

    #[test]
    fn deterministic() {
        let p = BandedParams::channel_like(300, 9);
        assert_eq!(banded(p).graph, banded(p).graph);
    }
}
