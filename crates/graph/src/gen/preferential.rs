//! Barabási–Albert preferential attachment: scale-free graphs grown one
//! vertex at a time, each attaching to `m` existing vertices with
//! probability proportional to degree. A second social-network stand-in
//! alongside RMAT, with guaranteed connectivity.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::Generated;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::ingest::IngestError;
use crate::sink::EdgeSink;
use crate::VertexId;

/// Parameters for [`barabasi_albert`].
#[derive(Debug, Clone, Copy)]
pub struct BarabasiAlbertParams {
    pub n: u64,
    /// Edges added per new vertex.
    pub m: u64,
    pub seed: u64,
}

/// Generate a Barabási–Albert graph (repeated-endpoint sampling: each
/// edge endpoint is drawn uniformly from the stub list, which realizes
/// degree-proportional attachment).
pub fn barabasi_albert(p: BarabasiAlbertParams) -> Generated {
    let mut el = EdgeList::new(p.n);
    barabasi_albert_stream(p, &mut el).expect("in-memory sink is infallible");
    Generated {
        graph: Csr::from_edge_list(el),
        ground_truth: None,
    }
}

/// Emit the Barabási–Albert edge stream into `sink`. Preferential
/// attachment is inherently stateful — the stub list carries O(n·m)
/// endpoints — but no [`EdgeList`] is materialized alongside it.
/// [`barabasi_albert`] is this loop collected into an [`EdgeList`], so
/// both paths see the identical edge sequence.
pub fn barabasi_albert_stream(
    p: BarabasiAlbertParams,
    sink: &mut impl EdgeSink,
) -> Result<(), IngestError> {
    assert!(p.m >= 1 && p.n > p.m, "need n > m >= 1");
    let mut rng = SmallRng::seed_from_u64(p.seed);
    // Stub list: every edge contributes both endpoints, so sampling a
    // uniform stub is degree-proportional sampling.
    let mut stubs: Vec<VertexId> = Vec::with_capacity(2 * (p.n * p.m) as usize);
    // Seed clique over the first m+1 vertices.
    for i in 0..=p.m {
        for j in (i + 1)..=p.m {
            sink.edge(i, j, 1.0)?;
            stubs.push(i);
            stubs.push(j);
        }
    }
    for v in (p.m + 1)..p.n {
        let mut chosen: Vec<VertexId> = Vec::with_capacity(p.m as usize);
        let mut guard = 0;
        while (chosen.len() as u64) < p.m && guard < 100 * p.m {
            guard += 1;
            let t = stubs[rng.random_range(0..stubs.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            sink.edge(v, t, 1.0)?;
            stubs.push(v);
            stubs.push(t);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_to_requested_size() {
        let g = barabasi_albert(BarabasiAlbertParams {
            n: 2_000,
            m: 3,
            seed: 1,
        })
        .graph;
        assert_eq!(g.num_vertices(), 2_000);
        // ~m edges per vertex beyond the seed clique.
        assert!(g.num_edges() as u64 >= 3 * (2_000 - 4));
    }

    #[test]
    fn hubs_emerge() {
        let g = barabasi_albert(BarabasiAlbertParams {
            n: 5_000,
            m: 2,
            seed: 2,
        })
        .graph;
        let max_deg = (0..g.num_vertices())
            .map(|v| g.degree(v as u64))
            .max()
            .unwrap();
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!(max_deg as f64 > 15.0 * avg, "max {max_deg} avg {avg}");
    }

    #[test]
    fn every_vertex_is_connected() {
        let g = barabasi_albert(BarabasiAlbertParams {
            n: 1_000,
            m: 2,
            seed: 3,
        })
        .graph;
        for v in 0..g.num_vertices() as u64 {
            assert!(g.degree(v) >= 1, "vertex {v} isolated");
        }
    }

    #[test]
    fn deterministic() {
        let p = BarabasiAlbertParams {
            n: 600,
            m: 3,
            seed: 4,
        };
        assert_eq!(barabasi_albert(p).graph, barabasi_albert(p).graph);
    }
}
