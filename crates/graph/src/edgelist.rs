//! Weighted undirected edge lists — the interchange format between
//! generators, binary I/O, and CSR construction.

use crate::hash::fast_map;
use crate::ingest::{check_weight, IngestError, RepairStats};
use crate::{VertexId, Weight};

/// One undirected edge. `u == v` denotes a self-loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    pub u: VertexId,
    pub v: VertexId,
    pub w: Weight,
}

/// A bag of undirected edges over vertices `0..num_vertices`.
///
/// Invariants maintained by the constructors: no duplicate undirected
/// pairs after [`EdgeList::dedup_sum`], endpoints `< num_vertices`.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    num_vertices: u64,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Empty list over `n` vertices.
    pub fn new(num_vertices: u64) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Build from raw `(u, v, w)` triples.
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(
        num_vertices: u64,
        triples: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Self {
        let mut list = Self::new(num_vertices);
        for (u, v, w) in triples {
            list.push(u, v, w);
        }
        list
    }

    /// Build from raw triples with a typed error surface instead of
    /// panics: out-of-range endpoints and NaN/negative/infinite weights
    /// are reported as [`IngestError`]s (the ingestion path; generators
    /// keep the infallible [`EdgeList::from_edges`]).
    pub fn try_from_edges(
        num_vertices: u64,
        triples: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> Result<Self, IngestError> {
        let mut list = Self::new(num_vertices);
        for (u, v, w) in triples {
            list.try_push(u, v, w)?;
        }
        Ok(list)
    }

    /// Append one undirected edge.
    pub fn push(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            u < self.num_vertices && v < self.num_vertices,
            "edge ({u},{v}) out of range (n={})",
            self.num_vertices
        );
        self.edges.push(Edge { u, v, w });
    }

    /// [`EdgeList::push`] with validation errors instead of panics.
    pub fn try_push(&mut self, u: VertexId, v: VertexId, w: Weight) -> Result<(), IngestError> {
        if u >= self.num_vertices || v >= self.num_vertices {
            return Err(IngestError::OutOfRange {
                u,
                v,
                num_vertices: self.num_vertices,
            });
        }
        check_weight(w, 0)?;
        self.edges.push(Edge { u, v, w });
        Ok(())
    }

    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of undirected edges currently stored (self-loops count once).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Sum of all edge weights (undirected; self-loops count once).
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.w).sum()
    }

    /// Merge duplicate undirected pairs by summing their weights.
    /// `(u,v)` and `(v,u)` are the same pair.
    pub fn dedup_sum(&mut self) {
        let mut acc = fast_map::<(VertexId, VertexId), Weight>();
        acc.reserve(self.edges.len());
        for e in &self.edges {
            let key = if e.u <= e.v { (e.u, e.v) } else { (e.v, e.u) };
            *acc.entry(key).or_insert(0.0) += e.w;
        }
        self.edges = acc
            .into_iter()
            .map(|((u, v), w)| Edge { u, v, w })
            .collect();
        self.edges.sort_unstable_by_key(|e| (e.u, e.v));
    }

    /// Repair pass over an already-built list: merge duplicate
    /// undirected pairs (summing weights) and drop self-loops,
    /// reporting what changed. Publishes nothing itself — call
    /// [`RepairStats::publish`] to emit the obs counters.
    pub fn repair(&mut self) -> RepairStats {
        let before = self.edges.len();
        let loops = self.edges.iter().filter(|e| e.u == e.v).count();
        self.edges.retain(|e| e.u != e.v);
        self.dedup_sum();
        RepairStats {
            duplicates_merged: (before - loops - self.edges.len()) as u64,
            self_loops_dropped: loops as u64,
        }
    }

    /// Expand to directed arcs: each non-loop edge becomes two arcs, each
    /// self-loop one arc. Returned triples are `(src, dst, w)`.
    pub fn to_arcs(&self) -> Vec<(VertexId, VertexId, Weight)> {
        let mut arcs = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            arcs.push((e.u, e.v, e.w));
            if e.u != e.v {
                arcs.push((e.v, e.u, e.w));
            }
        }
        arcs
    }

    /// Maximum endpoint id present, or `None` if empty.
    pub fn max_endpoint(&self) -> Option<VertexId> {
        self.edges.iter().map(|e| e.u.max(e.v)).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut el = EdgeList::new(4);
        el.push(0, 1, 1.0);
        el.push(2, 3, 2.0);
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.total_weight(), 3.0);
        assert_eq!(el.max_endpoint(), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut el = EdgeList::new(2);
        el.push(0, 2, 1.0);
    }

    #[test]
    fn dedup_sums_both_orientations() {
        let mut el = EdgeList::from_edges(3, [(0, 1, 1.0), (1, 0, 2.0), (0, 1, 0.5), (2, 2, 1.0)]);
        el.dedup_sum();
        assert_eq!(el.num_edges(), 2);
        let e01 = el.edges().iter().find(|e| e.u == 0 && e.v == 1).unwrap();
        assert_eq!(e01.w, 3.5);
        let loop2 = el.edges().iter().find(|e| e.u == 2 && e.v == 2).unwrap();
        assert_eq!(loop2.w, 1.0);
    }

    #[test]
    fn arcs_double_non_loops_only() {
        let el = EdgeList::from_edges(3, [(0, 1, 1.0), (2, 2, 4.0)]);
        let arcs = el.to_arcs();
        assert_eq!(arcs.len(), 3);
        assert!(arcs.contains(&(0, 1, 1.0)));
        assert!(arcs.contains(&(1, 0, 1.0)));
        assert!(arcs.contains(&(2, 2, 4.0)));
    }

    #[test]
    fn try_push_reports_typed_errors() {
        let mut el = EdgeList::new(2);
        assert!(el.try_push(0, 1, 1.0).is_ok());
        assert!(matches!(
            el.try_push(0, 2, 1.0),
            Err(IngestError::OutOfRange { .. })
        ));
        assert!(matches!(
            el.try_push(0, 1, f64::NAN),
            Err(IngestError::BadWeight { .. })
        ));
        assert!(matches!(
            el.try_push(0, 1, -2.0),
            Err(IngestError::BadWeight { .. })
        ));
        assert_eq!(el.num_edges(), 1, "failed pushes must not append");
        assert!(EdgeList::try_from_edges(2, [(0, 1, f64::INFINITY)]).is_err());
    }

    #[test]
    fn repair_merges_duplicates_and_drops_loops() {
        let mut el = EdgeList::from_edges(
            3,
            [
                (0, 1, 1.0),
                (1, 0, 2.0),
                (0, 1, 0.5),
                (2, 2, 1.0),
                (1, 2, 1.0),
            ],
        );
        let stats = el.repair();
        assert_eq!(stats.duplicates_merged, 2);
        assert_eq!(stats.self_loops_dropped, 1);
        assert!(stats.any());
        assert_eq!(el.num_edges(), 2);
        assert_eq!(el.total_weight(), 4.5);
        // A second pass finds nothing.
        assert!(!el.repair().any());
    }

    #[test]
    fn empty_list() {
        let el = EdgeList::new(5);
        assert!(el.is_empty());
        assert_eq!(el.max_endpoint(), None);
        assert_eq!(el.total_weight(), 0.0);
    }
}
