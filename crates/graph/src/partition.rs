//! 1D vertex partitioning across ranks.
//!
//! The paper distributes "the input vertices and their edge lists evenly
//! across available processes, such that each process receives roughly the
//! same number of edges; no clever graph partitioning is performed."
//! Partitions are contiguous vertex ranges, so ownership lookup is a
//! binary search over `p+1` boundaries and every rank knows every other
//! rank's interval (static knowledge, as in the paper).

use crate::csr::Csr;
use crate::VertexId;

/// Contiguous vertex ranges: rank `i` owns `starts[i]..starts[i+1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPartition {
    starts: Vec<VertexId>,
}

impl VertexPartition {
    /// Build from explicit boundaries (must be monotone, first 0).
    pub fn from_starts(starts: Vec<VertexId>) -> Self {
        assert!(starts.len() >= 2, "need at least one rank");
        assert_eq!(starts[0], 0);
        assert!(
            starts.windows(2).all(|w| w[0] <= w[1]),
            "non-monotone boundaries"
        );
        Self { starts }
    }

    /// Equal vertex counts (±1). Used for the re-balanced coarse graphs
    /// ("new partitions are generated so that every process owns an equal
    /// number of vertices", rebuild step 6).
    pub fn balanced_vertices(n: u64, p: usize) -> Self {
        let base = n / p as u64;
        let extra = (n % p as u64) as usize;
        let mut starts = Vec::with_capacity(p + 1);
        let mut acc = 0u64;
        starts.push(0);
        for r in 0..p {
            acc += base + u64::from(r < extra);
            starts.push(acc);
        }
        Self { starts }
    }

    /// Boundaries chosen so each rank holds roughly the same number of
    /// arcs (the paper's input distribution).
    pub fn balanced_edges(g: &Csr, p: usize) -> Self {
        let degrees: Vec<usize> = (0..g.num_vertices())
            .map(|v| g.degree(v as VertexId))
            .collect();
        Self::balanced_edges_from_degrees(&degrees, p)
    }

    /// Same as [`VertexPartition::balanced_edges`] from a degree array.
    pub fn balanced_edges_from_degrees(degrees: &[usize], p: usize) -> Self {
        assert!(p > 0);
        let n = degrees.len() as u64;
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        if total == 0 {
            return Self::balanced_vertices(n, p);
        }
        let mut starts = Vec::with_capacity(p + 1);
        starts.push(0);
        let mut acc = 0u64;
        let mut v = 0u64;
        for r in 1..p as u64 {
            let target = total * r / p as u64;
            while v < n && acc < target {
                acc += degrees[v as usize] as u64;
                v += 1;
            }
            starts.push(v);
        }
        starts.push(n);
        Self { starts }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of vertices.
    pub fn num_vertices(&self) -> u64 {
        *self.starts.last().unwrap()
    }

    /// Owning rank of vertex `v`.
    #[inline]
    pub fn owner_of(&self, v: VertexId) -> usize {
        debug_assert!(v < self.num_vertices(), "vertex {v} out of range");
        // partition_point returns the first start > v; its predecessor owns v.
        self.starts.partition_point(|&s| s <= v) - 1
    }

    /// The vertex range owned by `rank`.
    pub fn range(&self, rank: usize) -> std::ops::Range<VertexId> {
        self.starts[rank]..self.starts[rank + 1]
    }

    /// Number of vertices owned by `rank`.
    pub fn num_local(&self, rank: usize) -> usize {
        (self.starts[rank + 1] - self.starts[rank]) as usize
    }

    /// First vertex of `rank`.
    pub fn first(&self, rank: usize) -> VertexId {
        self.starts[rank]
    }

    /// Raw boundaries (length `p+1`).
    pub fn starts(&self) -> &[VertexId] {
        &self.starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    #[test]
    fn balanced_vertices_covers_everything() {
        let p = VertexPartition::balanced_vertices(10, 3);
        assert_eq!(p.starts(), &[0, 4, 7, 10]);
        assert_eq!(p.num_ranks(), 3);
        assert_eq!(p.num_vertices(), 10);
        assert_eq!(p.num_local(0), 4);
        assert_eq!(p.num_local(2), 3);
    }

    #[test]
    fn owner_lookup_matches_ranges() {
        let p = VertexPartition::balanced_vertices(10, 3);
        for r in 0..3 {
            for v in p.range(r) {
                assert_eq!(p.owner_of(v), r, "vertex {v}");
            }
        }
    }

    #[test]
    fn owner_lookup_with_empty_ranks() {
        // Rank 1 owns nothing.
        let p = VertexPartition::from_starts(vec![0, 5, 5, 8]);
        assert_eq!(p.owner_of(4), 0);
        assert_eq!(p.owner_of(5), 2);
        assert_eq!(p.num_local(1), 0);
    }

    #[test]
    fn balanced_edges_evens_out_arc_counts() {
        // Star graph: vertex 0 has degree 9, others degree 1 — an
        // edge-balanced split puts vertex 0 alone on rank 0.
        let mut el = EdgeList::new(10);
        for v in 1..10 {
            el.push(0, v, 1.0);
        }
        let g = crate::csr::Csr::from_edge_list(el);
        let p = VertexPartition::balanced_edges(&g, 2);
        assert_eq!(p.num_ranks(), 2);
        let arcs_rank0: usize = p.range(0).map(|v| g.degree(v)).sum();
        let arcs_rank1: usize = p.range(1).map(|v| g.degree(v)).sum();
        assert!(
            arcs_rank0.abs_diff(arcs_rank1) <= 9,
            "{arcs_rank0} vs {arcs_rank1}"
        );
    }

    #[test]
    fn balanced_edges_zero_degree_falls_back() {
        let p = VertexPartition::balanced_edges_from_degrees(&[0, 0, 0, 0], 2);
        assert_eq!(p.starts(), &[0, 2, 4]);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let p = VertexPartition::balanced_vertices(2, 4);
        assert_eq!(p.num_vertices(), 2);
        assert_eq!(p.num_ranks(), 4);
        let total: usize = (0..4).map(|r| p.num_local(r)).sum();
        assert_eq!(total, 2);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn bad_boundaries_rejected() {
        VertexPartition::from_starts(vec![0, 5, 3]);
    }
}
