//! Per-rank pieces of a distributed graph.
//!
//! Mirrors the paper's layout (Fig 1): the index array uses local offsets,
//! the edge array holds **global** destination ids; each rank also knows
//! the full ownership table ([`VertexPartition`]).

use crate::csr::Csr;
use crate::hash::fast_map_with_capacity;
use crate::partition::VertexPartition;
use crate::{VertexId, Weight};

/// The portion of a distributed graph owned by one rank: a CSR over the
/// rank's contiguous vertex range, with global destination ids.
#[derive(Debug, Clone)]
pub struct LocalGraph {
    part: VertexPartition,
    rank: usize,
    offsets: Vec<usize>,
    dests: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl LocalGraph {
    /// Build from arcs whose sources are all owned by `rank`. Duplicate
    /// `(src, dst)` arcs are merged by summing weights (this happens after
    /// the edge redistribution of graph reconstruction).
    pub fn from_arcs(
        part: VertexPartition,
        rank: usize,
        arcs: Vec<(VertexId, VertexId, Weight)>,
    ) -> Self {
        let first = part.first(rank);
        let nlocal = part.num_local(rank);
        // Merge duplicates, then bucket by source row.
        let mut merged = fast_map_with_capacity::<(VertexId, VertexId), Weight>(arcs.len());
        for (u, v, w) in arcs {
            debug_assert_eq!(
                part.owner_of(u),
                rank,
                "arc source {u} not owned by rank {rank}"
            );
            *merged.entry((u, v)).or_insert(0.0) += w;
        }
        let mut sorted: Vec<_> = merged.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        sorted.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut offsets = vec![0usize; nlocal + 1];
        for &(u, _, _) in &sorted {
            offsets[(u - first) as usize + 1] += 1;
        }
        for i in 0..nlocal {
            offsets[i + 1] += offsets[i];
        }
        Self {
            part,
            rank,
            offsets,
            dests: sorted.iter().map(|&(_, v, _)| v).collect(),
            weights: sorted.iter().map(|&(_, _, w)| w).collect(),
        }
    }

    /// Split a whole graph into per-rank pieces along `part` (sequential
    /// construction used by tests and by harnesses that generate the input
    /// in one place).
    pub fn scatter(g: &Csr, part: &VertexPartition) -> Vec<LocalGraph> {
        assert_eq!(g.num_vertices() as u64, part.num_vertices());
        (0..part.num_ranks())
            .map(|rank| {
                let range = part.range(rank);
                let first = range.start;
                let nlocal = part.num_local(rank);
                let lo = g.offsets()[first as usize];
                let hi = g.offsets()[range.end as usize];
                let offsets = g.offsets()[first as usize..=range.end as usize]
                    .iter()
                    .map(|&o| o - lo)
                    .collect();
                let _ = nlocal;
                LocalGraph {
                    part: part.clone(),
                    rank,
                    offsets,
                    dests: g.dests()[lo..hi].to_vec(),
                    weights: g.weights()[lo..hi].to_vec(),
                }
            })
            .collect()
    }

    /// Ownership table shared by all ranks.
    pub fn partition(&self) -> &VertexPartition {
        &self.part
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Global id of the first owned vertex.
    pub fn first_vertex(&self) -> VertexId {
        self.part.first(self.rank)
    }

    /// Number of owned vertices.
    pub fn num_local(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total vertices in the global graph.
    pub fn num_global(&self) -> u64 {
        self.part.num_vertices()
    }

    /// Number of locally stored arcs.
    pub fn num_local_arcs(&self) -> usize {
        self.dests.len()
    }

    /// The raw CSR storage of this rank's slab, `(offsets, dests,
    /// weights)` — the exact state a checkpoint must persist.
    /// [`LocalGraph::from_csr_parts`] is the inverse.
    pub fn csr_parts(&self) -> (&[usize], &[VertexId], &[Weight]) {
        (&self.offsets, &self.dests, &self.weights)
    }

    /// Rebuild a slab from raw CSR storage (checkpoint restore). Panics
    /// if the parts are not a well-formed CSR for `rank`'s vertex range.
    pub fn from_csr_parts(
        part: VertexPartition,
        rank: usize,
        offsets: Vec<usize>,
        dests: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Self {
        assert!(rank < part.num_ranks(), "rank {rank} out of range");
        assert_eq!(
            offsets.len(),
            part.num_local(rank) + 1,
            "offsets length does not match the rank's vertex count"
        );
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be nondecreasing"
        );
        assert_eq!(*offsets.last().unwrap(), dests.len());
        assert_eq!(dests.len(), weights.len());
        Self {
            part,
            rank,
            offsets,
            dests,
            weights,
        }
    }

    /// Convert a global id of an owned vertex to its local index.
    #[inline]
    pub fn to_local(&self, v: VertexId) -> usize {
        debug_assert_eq!(self.part.owner_of(v), self.rank);
        (v - self.first_vertex()) as usize
    }

    /// Convert a local index to the global id.
    #[inline]
    pub fn to_global(&self, l: usize) -> VertexId {
        self.first_vertex() + l as VertexId
    }

    /// True if `v` (global) is owned here.
    #[inline]
    pub fn owns(&self, v: VertexId) -> bool {
        let r = self.part.range(self.rank);
        v >= r.start && v < r.end
    }

    /// Neighbors (global ids) of the local vertex `l`.
    #[inline]
    pub fn neighbors(&self, l: usize) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.offsets[l]..self.offsets[l + 1];
        self.dests[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Weighted degree of local vertex `l` (self-loop counts once).
    pub fn weighted_degree(&self, l: usize) -> Weight {
        self.weights[self.offsets[l]..self.offsets[l + 1]]
            .iter()
            .sum()
    }

    /// Sum of all local arc weights (this rank's contribution to `2m`).
    pub fn local_arc_weight(&self) -> Weight {
        self.weights.iter().sum()
    }

    /// Reassemble a full CSR from all pieces (testing / root-side quality
    /// checks only).
    pub fn assemble(parts: &[LocalGraph]) -> Csr {
        assert!(!parts.is_empty());
        let n = parts[0].num_global() as usize;
        let mut arcs = Vec::new();
        for p in parts {
            for l in 0..p.num_local() {
                let u = p.to_global(l);
                for (v, w) in p.neighbors(l) {
                    arcs.push((u, v, w));
                }
            }
        }
        Csr::from_arcs(n, arcs)
    }
}

/// Build a distributed graph from per-rank chunks of an undirected edge
/// list — the paper's loading path: every rank reads an arbitrary slice of
/// the binary edge file (MPI-I/O style) and the edges are redistributed so
/// that "each process receives roughly the same number of edges".
/// Collective; returns this rank's piece.
///
/// The edge-balanced boundaries are computed *distributedly*: a provisional
/// uniform partition owns the degree histogram, an exclusive prefix scan
/// gives each rank its global degree offset, and boundary vertices are
/// located where the cumulative degree crosses the per-rank quota.
pub fn build_distributed(
    comm: &louvain_comm::Comm,
    num_vertices: u64,
    edges: Vec<(VertexId, VertexId, Weight)>,
) -> LocalGraph {
    use louvain_comm::ReduceOp;
    let p = comm.size();

    // Symmetrize into arcs.
    let mut arcs = Vec::with_capacity(edges.len() * 2);
    for (u, v, w) in edges {
        arcs.push((u, v, w));
        if u != v {
            arcs.push((v, u, w));
        }
    }

    // Pass 1: distributed degree histogram under a provisional uniform
    // partition.
    let provisional = VertexPartition::balanced_vertices(num_vertices, p);
    let mut degree_msgs: Vec<Vec<(VertexId, u64)>> = vec![Vec::new(); p];
    {
        let mut local_counts = fast_map_with_capacity::<VertexId, u64>(arcs.len());
        for &(u, _, _) in &arcs {
            *local_counts.entry(u).or_insert(0) += 1;
        }
        for (v, c) in local_counts {
            degree_msgs[provisional.owner_of(v)].push((v, c));
        }
    }
    let received = comm.all_to_all_v(degree_msgs);
    let my_range = provisional.range(comm.rank());
    let my_first = my_range.start;
    let mut degrees = vec![0u64; provisional.num_local(comm.rank())];
    for msgs in &received {
        for &(v, c) in msgs {
            degrees[(v - my_first) as usize] += c;
        }
    }

    // Pass 2: edge-balanced boundaries from a prefix scan of degrees.
    let local_sum: u64 = degrees.iter().sum();
    let my_offset = comm.exscan_sum(local_sum);
    let total = comm.all_reduce(local_sum, ReduceOp::Sum);
    // Each rank reports the boundary vertices whose cumulative degree
    // crosses a quota multiple inside its provisional range.
    let mut local_boundaries: Vec<(u64, VertexId)> = Vec::new(); // (quota index, vertex)
    if total > 0 {
        let mut acc = my_offset;
        for (i, &d) in degrees.iter().enumerate() {
            let before = acc;
            acc += d;
            // Quota r is crossed when cumulative degree first reaches
            // total*r/p.
            for r in 1..p as u64 {
                let target = total * r / p as u64;
                if before < target && acc >= target {
                    local_boundaries.push((r, my_first + i as u64 + 1));
                }
            }
        }
    }
    let all_boundaries: Vec<Vec<(u64, VertexId)>> = comm.all_gather(local_boundaries);
    let mut starts = vec![0 as VertexId; p + 1];
    starts[p] = num_vertices;
    for list in &all_boundaries {
        for &(r, v) in list {
            starts[r as usize] = v;
        }
    }
    // Quotas never crossed (e.g. empty tail ranks) stay 0 — make monotone.
    for r in 1..=p {
        if starts[r] < starts[r - 1] {
            starts[r] = starts[r - 1];
        }
    }
    let part = VertexPartition::from_starts(starts);

    // Pass 3: route arcs to the owner of their source.
    let mut outgoing: Vec<Vec<(VertexId, VertexId, Weight)>> = vec![Vec::new(); p];
    for arc in arcs {
        outgoing[part.owner_of(arc.0)].push(arc);
    }
    let received = comm.all_to_all_v(outgoing);
    LocalGraph::from_arcs(part, comm.rank(), received.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn path_graph(n: u64) -> Csr {
        let mut el = EdgeList::new(n);
        for v in 0..n - 1 {
            el.push(v, v + 1, 1.0);
        }
        Csr::from_edge_list(el)
    }

    #[test]
    fn scatter_partitions_all_arcs() {
        let g = path_graph(10);
        let part = VertexPartition::balanced_vertices(10, 3);
        let parts = LocalGraph::scatter(&g, &part);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|p| p.num_local_arcs()).sum();
        assert_eq!(total, g.num_arcs());
        for p in &parts {
            assert_eq!(p.num_local(), part.num_local(p.rank()));
        }
    }

    #[test]
    fn scatter_then_assemble_roundtrips() {
        let g = path_graph(17);
        let part = VertexPartition::balanced_edges(&g, 4);
        let parts = LocalGraph::scatter(&g, &part);
        let g2 = LocalGraph::assemble(&parts);
        assert_eq!(g, g2);
    }

    #[test]
    fn local_global_id_mapping() {
        let g = path_graph(10);
        let part = VertexPartition::balanced_vertices(10, 3);
        let parts = LocalGraph::scatter(&g, &part);
        let p1 = &parts[1];
        assert_eq!(p1.first_vertex(), 4);
        assert_eq!(p1.to_local(5), 1);
        assert_eq!(p1.to_global(1), 5);
        assert!(p1.owns(4) && p1.owns(6) && !p1.owns(7));
    }

    #[test]
    fn neighbors_use_global_ids() {
        let g = path_graph(10);
        let part = VertexPartition::balanced_vertices(10, 3);
        let parts = LocalGraph::scatter(&g, &part);
        // Vertex 4 (local 0 of rank 1) has neighbors 3 (remote) and 5 (local).
        let n: Vec<_> = parts[1].neighbors(0).map(|(v, _)| v).collect();
        assert_eq!(n, vec![3, 5]);
    }

    #[test]
    fn from_arcs_merges_duplicates() {
        let part = VertexPartition::balanced_vertices(4, 2);
        let lg = LocalGraph::from_arcs(
            part,
            0,
            vec![(0, 1, 1.0), (0, 1, 2.0), (1, 3, 1.0), (0, 0, 0.5)],
        );
        assert_eq!(lg.num_local_arcs(), 3);
        let w01: f64 = lg
            .neighbors(0)
            .filter(|&(v, _)| v == 1)
            .map(|(_, w)| w)
            .sum();
        assert_eq!(w01, 3.0);
        assert_eq!(lg.weighted_degree(0), 3.5);
    }

    #[test]
    fn csr_parts_roundtrip() {
        let g = path_graph(12);
        let part = VertexPartition::balanced_vertices(12, 3);
        let parts = LocalGraph::scatter(&g, &part);
        for lg in &parts {
            let (offsets, dests, weights) = lg.csr_parts();
            let back = LocalGraph::from_csr_parts(
                lg.partition().clone(),
                lg.rank(),
                offsets.to_vec(),
                dests.to_vec(),
                weights.to_vec(),
            );
            assert_eq!(back.num_local(), lg.num_local());
            assert_eq!(back.num_local_arcs(), lg.num_local_arcs());
            for l in 0..lg.num_local() {
                assert!(back.neighbors(l).eq(lg.neighbors(l)));
            }
        }
    }

    #[test]
    fn build_distributed_matches_direct_scatter() {
        let gen = crate::gen::lfr(crate::gen::LfrParams::small(400, 7));
        let g = gen.graph;
        let el = g.to_edge_list();
        let n = g.num_vertices() as u64;
        for p in [1, 2, 4] {
            let edges: Vec<(u64, u64, f64)> = el.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
            // Split the records arbitrarily across ranks (as a range read
            // of the binary file would).
            let chunks: Vec<Vec<(u64, u64, f64)>> = (0..p)
                .map(|r| {
                    let lo = edges.len() * r / p;
                    let hi = edges.len() * (r + 1) / p;
                    edges[lo..hi].to_vec()
                })
                .collect();
            let parts = louvain_comm::run(p, |c| build_distributed(c, n, chunks[c.rank()].clone()));
            let assembled = LocalGraph::assemble(&parts);
            assert_eq!(assembled, g, "p={p}");
            // The split is edge-balanced: no rank holds more than ~2x the
            // average arc count (power-law degrees make perfect balance
            // impossible at vertex granularity).
            let avg = g.num_arcs() / p;
            for piece in &parts {
                assert!(
                    piece.num_local_arcs() <= 2 * avg + 64,
                    "p={p} rank {} holds {} arcs (avg {avg})",
                    piece.rank(),
                    piece.num_local_arcs()
                );
            }
        }
    }

    #[test]
    fn build_distributed_handles_empty_rank_chunks() {
        // All edges arrive through rank 0's chunk.
        let g = path_graph(20);
        let el = g.to_edge_list();
        let edges: Vec<(u64, u64, f64)> = el.edges().iter().map(|e| (e.u, e.v, e.w)).collect();
        let parts = louvain_comm::run(3, |c| {
            let chunk = if c.rank() == 0 {
                edges.clone()
            } else {
                Vec::new()
            };
            build_distributed(c, 20, chunk)
        });
        assert_eq!(LocalGraph::assemble(&parts), g);
    }

    #[test]
    fn local_arc_weight_sums_to_two_m() {
        let g = path_graph(12);
        let part = VertexPartition::balanced_vertices(12, 4);
        let parts = LocalGraph::scatter(&g, &part);
        let total: f64 = parts.iter().map(|p| p.local_arc_weight()).sum();
        assert_eq!(total, g.two_m());
    }
}
