//! Community-quality metrics beyond modularity.
//!
//! Modularity is the objective the Louvain method optimizes (and has a
//! known resolution limit — the paper cites Fortunato & Barthélemy); a
//! credible library also reports the standard complements: per-community
//! conductance, partition coverage, and the graph's clustering
//! coefficient.

use crate::csr::Csr;
use crate::hash::{fast_map, fast_set, FastMap};
use crate::{VertexId, Weight};

/// Per-partition summary produced by [`partition_metrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMetrics {
    /// Number of communities.
    pub num_communities: usize,
    /// Fraction of edge weight that is intra-community
    /// (`coverage = Σ_in / 2m`, 1.0 when everything is internal).
    pub coverage: f64,
    /// Weighted mean conductance over communities (0 = perfectly
    /// separated, 1 = all boundary).
    pub mean_conductance: f64,
    /// Largest / median community size.
    pub max_community: usize,
    pub median_community: usize,
}

/// Conductance of one community: `cut / min(vol, 2m − vol)` where `cut`
/// is the weight of boundary arcs and `vol` the community's total arc
/// weight. 0 for a disconnected perfect community; define 0 for
/// degenerate (empty or full-graph) communities.
pub fn conductance(g: &Csr, comm: &[VertexId], community: VertexId) -> f64 {
    let two_m = g.two_m();
    let mut cut = 0.0;
    let mut vol = 0.0;
    for v in 0..g.num_vertices() {
        if comm[v] != community {
            continue;
        }
        for (u, w) in g.neighbors(v as VertexId) {
            vol += w;
            if comm[u as usize] != community {
                cut += w;
            }
        }
    }
    let denom = vol.min(two_m - vol);
    if denom <= 0.0 {
        0.0
    } else {
        cut / denom
    }
}

/// Coverage: fraction of arc weight internal to communities.
pub fn coverage(g: &Csr, comm: &[VertexId]) -> f64 {
    let two_m = g.two_m();
    if two_m == 0.0 {
        return 1.0;
    }
    let mut internal = 0.0;
    for v in 0..g.num_vertices() {
        let cv = comm[v];
        for (u, w) in g.neighbors(v as VertexId) {
            if comm[u as usize] == cv {
                internal += w;
            }
        }
    }
    internal / two_m
}

/// Global clustering coefficient (transitivity): `3·triangles / wedges`,
/// unweighted. High for the paper's web/mesh graphs, low for random ones.
pub fn clustering_coefficient(g: &Csr) -> f64 {
    let n = g.num_vertices();
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for v in 0..n as VertexId {
        let nbrs: Vec<VertexId> = g.neighbors(v).map(|(u, _)| u).filter(|&u| u != v).collect();
        let d = nbrs.len() as u64;
        wedges += d.saturating_sub(1) * d / 2;
        let set: crate::hash::FastSet<VertexId> = nbrs.iter().copied().collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                // Count each triangle once per apex.
                if a < b && set.contains(&a) && g.neighbors(a).any(|(x, _)| x == b) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        triangles as f64 / wedges as f64
    }
}

/// Full summary of a partition.
pub fn partition_metrics(g: &Csr, comm: &[VertexId]) -> PartitionMetrics {
    assert_eq!(g.num_vertices(), comm.len());
    let two_m = g.two_m();
    // One pass: per-community volume, cut, size.
    let mut vol: FastMap<VertexId, Weight> = fast_map();
    let mut cut: FastMap<VertexId, Weight> = fast_map();
    let mut size: FastMap<VertexId, usize> = fast_map();
    for v in 0..g.num_vertices() {
        let cv = comm[v];
        *size.entry(cv).or_insert(0) += 1;
        for (u, w) in g.neighbors(v as VertexId) {
            *vol.entry(cv).or_insert(0.0) += w;
            if comm[u as usize] != cv {
                *cut.entry(cv).or_insert(0.0) += w;
            }
        }
    }
    let ids: crate::hash::FastSet<VertexId> = {
        let mut s = fast_set();
        s.extend(comm.iter().copied());
        s
    };
    let num_communities = ids.len();
    let total_cut: f64 = cut.values().sum();
    let coverage = if two_m > 0.0 {
        1.0 - total_cut / two_m
    } else {
        1.0
    };
    // Size-weighted mean conductance.
    let n = g.num_vertices() as f64;
    let mut mean_conductance = 0.0;
    for &c in &ids {
        let v = vol.get(&c).copied().unwrap_or(0.0);
        let k = cut.get(&c).copied().unwrap_or(0.0);
        let denom = v.min(two_m - v);
        let phi = if denom <= 0.0 { 0.0 } else { k / denom };
        mean_conductance += phi * size[&c] as f64 / n;
    }
    let mut sizes: Vec<usize> = size.values().copied().collect();
    sizes.sort_unstable();
    PartitionMetrics {
        num_communities,
        coverage,
        mean_conductance,
        max_community: sizes.last().copied().unwrap_or(0),
        median_community: sizes.get(sizes.len() / 2).copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;

    fn two_triangles() -> Csr {
        Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        ))
    }

    #[test]
    fn conductance_of_good_communities_is_low() {
        let g = two_triangles();
        let comm = vec![0, 0, 0, 1, 1, 1];
        // Each triangle: vol = 7 arcs weight, cut = 1.
        let phi = conductance(&g, &comm, 0);
        assert!((phi - 1.0 / 7.0).abs() < 1e-12, "phi = {phi}");
    }

    #[test]
    fn conductance_of_whole_graph_is_zero() {
        let g = two_triangles();
        assert_eq!(conductance(&g, &[0; 6], 0), 0.0);
    }

    #[test]
    fn coverage_counts_internal_fraction() {
        let g = two_triangles();
        let comm = vec![0, 0, 0, 1, 1, 1];
        // 12 of 14 arcs internal.
        assert!((coverage(&g, &comm) - 12.0 / 14.0).abs() < 1e-12);
        assert_eq!(coverage(&g, &[0; 6]), 1.0);
    }

    #[test]
    fn clustering_coefficient_of_triangle_is_one() {
        let g = Csr::from_edge_list(EdgeList::from_edges(
            3,
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
        ));
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_coefficient_of_star_is_zero() {
        let g = Csr::from_edge_list(EdgeList::from_edges(
            4,
            [(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)],
        ));
        assert_eq!(clustering_coefficient(&g), 0.0);
    }

    #[test]
    fn partition_metrics_summary() {
        let g = two_triangles();
        let m = partition_metrics(&g, &[0, 0, 0, 1, 1, 1]);
        assert_eq!(m.num_communities, 2);
        assert!((m.coverage - 12.0 / 14.0).abs() < 1e-12);
        assert!((m.mean_conductance - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.max_community, 3);
        assert_eq!(m.median_community, 3);
    }

    #[test]
    fn metrics_track_partition_quality_ordering() {
        let gen = crate::gen::lfr(crate::gen::LfrParams::small(1_000, 3));
        let good = partition_metrics(&gen.graph, gen.ground_truth.as_ref().unwrap());
        let singletons: Vec<u64> = (0..1_000).collect();
        let bad = partition_metrics(&gen.graph, &singletons);
        assert!(good.coverage > bad.coverage);
        assert!(good.mean_conductance < bad.mean_conductance);
    }
}
