//! Compressed-sparse-row storage for weighted undirected graphs.
//!
//! A `Csr` stores *directed arcs*: each undirected edge appears in both
//! rows, a self-loop appears once in its row. This is the storage layout
//! of the paper (Section IV, Fig 1) and makes the weighted degree of a
//! vertex exactly the sum of its row.

use crate::edgelist::EdgeList;
use crate::{VertexId, Weight};

/// Weighted CSR graph over vertices `0..num_vertices()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    dests: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl Csr {
    /// Build from an undirected edge list (duplicates are merged first).
    pub fn from_edge_list(mut list: EdgeList) -> Self {
        list.dedup_sum();
        let n = list.num_vertices() as usize;
        let arcs = list.to_arcs();
        Self::from_arcs(n, arcs)
    }

    /// Build from directed arcs. The caller guarantees symmetry (both
    /// orientations present for non-loops); this is checked in debug mode.
    pub fn from_arcs(n: usize, mut arcs: Vec<(VertexId, VertexId, Weight)>) -> Self {
        arcs.sort_unstable_by_key(|&(u, v, _)| (u, v));
        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let dests = arcs.iter().map(|&(_, v, _)| v).collect();
        let weights = arcs.iter().map(|&(_, _, w)| w).collect();
        let csr = Self {
            offsets,
            dests,
            weights,
        };
        debug_assert!(csr.is_symmetric(), "CSR built from asymmetric arc set");
        csr
    }

    /// Build from raw CSR storage (the slab-store load path). Panics if
    /// the parts are not a well-formed CSR; symmetry is checked in debug
    /// mode like every other constructor.
    pub fn from_raw_parts(offsets: Vec<usize>, dests: Vec<VertexId>, weights: Vec<Weight>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be nondecreasing"
        );
        assert_eq!(*offsets.last().unwrap(), dests.len());
        assert_eq!(dests.len(), weights.len());
        let csr = Self {
            offsets,
            dests,
            weights,
        };
        debug_assert!(csr.is_symmetric(), "CSR built from asymmetric raw parts");
        csr
    }

    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored arcs (2·|undirected non-loop edges| + |loops|).
    pub fn num_arcs(&self) -> usize {
        self.dests.len()
    }

    /// Number of undirected edges (self-loops count once).
    pub fn num_edges(&self) -> usize {
        let loops = (0..self.num_vertices())
            .flat_map(|u| {
                self.neighbors(u as VertexId)
                    .filter(move |&(v, _)| v == u as VertexId)
            })
            .count();
        (self.num_arcs() - loops) / 2 + loops
    }

    /// Out-degree of `v` in arcs.
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Iterator over `(neighbor, weight)` of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let v = v as usize;
        let range = self.offsets[v]..self.offsets[v + 1];
        self.dests[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// Weighted degree `k_v` = sum of the row's arc weights (self-loop
    /// counts once, matching the coarsening-invariant convention).
    pub fn weighted_degree(&self, v: VertexId) -> Weight {
        let v = v as usize;
        self.weights[self.offsets[v]..self.offsets[v + 1]]
            .iter()
            .sum()
    }

    /// All weighted degrees at once (one pass).
    pub fn weighted_degrees(&self) -> Vec<Weight> {
        (0..self.num_vertices())
            .map(|v| self.weighted_degree(v as VertexId))
            .collect()
    }

    /// `2m` in the modularity formula: the sum of all arc weights.
    pub fn two_m(&self) -> Weight {
        self.weights.iter().sum()
    }

    /// Self-loop weight of `v` (0 if none).
    pub fn self_loop(&self, v: VertexId) -> Weight {
        self.neighbors(v)
            .filter(|&(u, _)| u == v)
            .map(|(_, w)| w)
            .sum()
    }

    /// True if every non-loop arc has its reverse with equal weight.
    pub fn is_symmetric(&self) -> bool {
        for u in 0..self.num_vertices() as VertexId {
            for (v, w) in self.neighbors(u) {
                if v == u {
                    continue;
                }
                let back: Weight = self
                    .neighbors(v)
                    .filter(|&(x, _)| x == u)
                    .map(|(_, w)| w)
                    .sum();
                if (back - w).abs() > 1e-9 * w.abs().max(1.0) {
                    return false;
                }
            }
        }
        true
    }

    /// Raw offsets (length `n+1`).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw destination array.
    pub fn dests(&self) -> &[VertexId] {
        &self.dests
    }

    /// Raw weight array (parallel to [`Csr::dests`]).
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Export as an undirected edge list (each non-loop pair emitted once).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut el = EdgeList::new(self.num_vertices() as u64);
        for u in 0..self.num_vertices() as VertexId {
            for (v, w) in self.neighbors(u) {
                if u <= v {
                    el.push(u, v, w);
                }
            }
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_with_loop() -> Csr {
        // Triangle 0-1-2 plus a self-loop on 2.
        Csr::from_edge_list(EdgeList::from_edges(
            3,
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0), (2, 2, 4.0)],
        ))
    }

    #[test]
    fn basic_shape() {
        let g = triangle_with_loop();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 7); // 3 edges * 2 + 1 loop
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn weighted_degrees_and_two_m() {
        let g = triangle_with_loop();
        assert_eq!(g.weighted_degree(0), 4.0); // 1 + 3
        assert_eq!(g.weighted_degree(1), 3.0); // 1 + 2
        assert_eq!(g.weighted_degree(2), 9.0); // 2 + 3 + 4
        assert_eq!(g.two_m(), 16.0);
        let degs = g.weighted_degrees();
        assert_eq!(degs, vec![4.0, 3.0, 9.0]);
    }

    #[test]
    fn self_loop_weight() {
        let g = triangle_with_loop();
        assert_eq!(g.self_loop(2), 4.0);
        assert_eq!(g.self_loop(0), 0.0);
    }

    #[test]
    fn symmetry_detected() {
        let g = triangle_with_loop();
        assert!(g.is_symmetric());
        let bad = Csr {
            offsets: vec![0, 1, 1],
            dests: vec![1],
            weights: vec![1.0],
        };
        assert!(!bad.is_symmetric());
    }

    #[test]
    fn neighbors_sorted_by_destination() {
        let g = triangle_with_loop();
        let n2: Vec<_> = g.neighbors(2).map(|(v, _)| v).collect();
        assert_eq!(n2, vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_edges_merged() {
        let g = Csr::from_edge_list(EdgeList::from_edges(2, [(0, 1, 1.0), (1, 0, 1.0)]));
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.weighted_degree(0), 2.0);
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = triangle_with_loop();
        let g2 = Csr::from_edge_list(g.to_edge_list());
        assert_eq!(g, g2);
    }

    #[test]
    fn isolated_vertices_have_empty_rows() {
        let g = Csr::from_edge_list(EdgeList::from_edges(5, [(0, 1, 1.0)]));
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.weighted_degree(3), 0.0);
    }
}
