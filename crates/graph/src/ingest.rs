//! Typed ingestion errors and input repair.
//!
//! Real-world edge lists (SNAP, UFL, Network Repository dumps) arrive
//! with NaN or negative weights, duplicate pairs, self-loops, and
//! endpoints beyond the declared vertex count. The library-level
//! constructors historically panicked on the worst of these; this
//! module gives ingestion a typed error surface ([`IngestError`]) and a
//! repair mode that normalizes recoverable defects (duplicate merging,
//! self-loop dropping) while counting what it touched in the obs
//! metrics (`ingest.duplicates_merged`, `ingest.self_loops_dropped`).

use std::fmt;
use std::io;

use crate::VertexId;

/// Why a weight was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightFault {
    /// `NaN` — poisons every modularity sum it touches.
    NotANumber,
    /// Negative — modularity is undefined for negative weights.
    Negative,
    /// `±inf` on input, or a running total that overflowed to `inf`.
    Overflow,
}

impl fmt::Display for WeightFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WeightFault::NotANumber => "not a number",
            WeightFault::Negative => "negative",
            WeightFault::Overflow => "overflows f64",
        })
    }
}

/// A defect found while ingesting a graph. `line` fields are 1-based
/// text-input line numbers; 0 means "not from a text file".
#[derive(Debug)]
pub enum IngestError {
    /// A weight failed validation (always an error, even under repair:
    /// there is no principled fix for a NaN).
    BadWeight {
        line: usize,
        value: f64,
        fault: WeightFault,
    },
    /// The same undirected pair appeared twice in strict mode.
    DuplicateEdge {
        u: u64,
        v: u64,
        line: usize,
    },
    /// A `u == v` edge in strict mode.
    SelfLoop {
        v: u64,
        line: usize,
    },
    /// An endpoint at or past the declared vertex count.
    OutOfRange {
        u: VertexId,
        v: VertexId,
        num_vertices: u64,
    },
    /// Malformed text (missing column, unparsable id).
    Parse {
        line: usize,
        msg: String,
    },
    Io(io::Error),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::BadWeight { line, value, fault } => {
                write!(f, "line {line}: weight {value} is {fault}")
            }
            IngestError::DuplicateEdge { u, v, line } => {
                write!(f, "line {line}: duplicate undirected edge ({u},{v})")
            }
            IngestError::SelfLoop { v, line } => {
                write!(f, "line {line}: self-loop on vertex {v}")
            }
            IngestError::OutOfRange { u, v, num_vertices } => {
                write!(f, "edge ({u},{v}) out of range for {num_vertices} vertices")
            }
            IngestError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            IngestError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<IngestError> for io::Error {
    fn from(e: IngestError) -> Self {
        match e {
            IngestError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// How ingestion treats recoverable defects (duplicate pairs and
/// self-loops). Weight and endpoint defects are errors in every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestPolicy {
    /// Keep duplicates and self-loops as written (legacy behaviour; the
    /// CSR builder later merges parallel arcs implicitly).
    #[default]
    Lenient,
    /// Reject duplicates and self-loops with a typed error.
    Strict,
    /// Merge duplicate pairs (summing weights) and drop self-loops,
    /// counting both in [`RepairStats`] and the obs counters.
    Repair,
}

/// What a repair pass changed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Extra copies of an undirected pair merged away (3 copies of one
    /// pair count as 2).
    pub duplicates_merged: u64,
    pub self_loops_dropped: u64,
}

impl RepairStats {
    pub fn any(&self) -> bool {
        self.duplicates_merged + self.self_loops_dropped > 0
    }

    /// Publish the repair counters to the obs metrics sink.
    pub fn publish(&self) {
        louvain_obs::counter_add("ingest.duplicates_merged", self.duplicates_merged);
        louvain_obs::counter_add("ingest.self_loops_dropped", self.self_loops_dropped);
    }
}

/// Validate one weight; `line` is threaded into the error.
pub fn check_weight(w: f64, line: usize) -> Result<(), IngestError> {
    let fault = if w.is_nan() {
        WeightFault::NotANumber
    } else if w < 0.0 {
        WeightFault::Negative
    } else if w.is_infinite() {
        WeightFault::Overflow
    } else {
        return Ok(());
    };
    Err(IngestError::BadWeight {
        line,
        value: w,
        fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_validation_catches_each_fault() {
        assert!(check_weight(1.5, 1).is_ok());
        assert!(check_weight(0.0, 1).is_ok());
        let nan = check_weight(f64::NAN, 3).unwrap_err();
        assert!(nan.to_string().contains("not a number"), "{nan}");
        let neg = check_weight(-1.0, 4).unwrap_err();
        assert!(neg.to_string().contains("negative"), "{neg}");
        let inf = check_weight(f64::INFINITY, 5).unwrap_err();
        assert!(inf.to_string().contains("overflows"), "{inf}");
    }

    #[test]
    fn errors_convert_to_io_invalid_data() {
        let e: io::Error = IngestError::SelfLoop { v: 7, line: 2 }.into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        assert!(e.to_string().contains("self-loop"));
    }

    #[test]
    fn repair_stats_publish_and_any() {
        let s = RepairStats {
            duplicates_merged: 2,
            self_loops_dropped: 1,
        };
        assert!(s.any());
        assert!(!RepairStats::default().any());
        s.publish(); // must not panic with tracing off
    }
}
