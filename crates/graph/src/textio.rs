//! Text edge-list import/export (SNAP / Matrix-Market-adjacent format).
//!
//! The paper's inputs come "in their native formats from four sources:
//! UFL sparse matrix collection, Network repository, SNAP and LAW", which
//! the authors convert to their binary format. This module covers the
//! common text form: one edge per line, `src dst [weight]`, `#` or `%`
//! comments, arbitrary (non-contiguous) vertex ids remapped densely.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::edgelist::EdgeList;
use crate::hash::{fast_map, FastMap};
use crate::ingest::{check_weight, IngestError, IngestPolicy, RepairStats};
use crate::{VertexId, Weight};

/// Result of a text import: the edge list plus the mapping from original
/// (file) ids to the dense ids used in the graph.
#[derive(Debug)]
pub struct TextImport {
    pub edges: EdgeList,
    /// `original_id[dense_id]` — the file's id for each dense vertex.
    pub original_ids: Vec<u64>,
    /// What [`IngestPolicy::Repair`] changed (zero under other
    /// policies).
    pub repairs: RepairStats,
}

/// Parse a text edge list from a reader. Lines: `src dst [weight]`,
/// separated by whitespace; `#`/`%`-prefixed lines are comments.
/// Vertex ids are remapped to `0..n` in order of first appearance.
///
/// Legacy entry point: [`IngestPolicy::Lenient`] with errors flattened
/// to `io::Error`. NaN/negative/infinite weights are rejected in every
/// policy.
pub fn parse_edge_list<R: BufRead>(reader: R) -> io::Result<TextImport> {
    parse_edge_list_policy(reader, IngestPolicy::Lenient).map_err(io::Error::from)
}

/// [`parse_edge_list`] with an explicit defect policy and typed errors.
pub fn parse_edge_list_policy<R: BufRead>(
    reader: R,
    policy: IngestPolicy,
) -> Result<TextImport, IngestError> {
    let mut remap: FastMap<u64, VertexId> = fast_map();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut triples: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    // Normalized pair -> index into `triples`, for duplicate detection
    // under the strict/repair policies.
    let mut seen: FastMap<(VertexId, VertexId), usize> = fast_map();
    let mut repairs = RepairStats::default();
    let mut total_weight = 0.0f64;
    let dense = |raw: u64, remap: &mut FastMap<u64, VertexId>, orig: &mut Vec<u64>| {
        *remap.entry(raw).or_insert_with(|| {
            orig.push(raw);
            (orig.len() - 1) as VertexId
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let lineno = lineno + 1;
        let (u, v, w) = split_line(t, lineno)?;
        check_weight(w, lineno)?;
        total_weight += w;
        if total_weight.is_infinite() {
            return Err(IngestError::BadWeight {
                line: lineno,
                value: w,
                fault: crate::ingest::WeightFault::Overflow,
            });
        }
        let du = dense(u, &mut remap, &mut original_ids);
        let dv = dense(v, &mut remap, &mut original_ids);
        if policy != IngestPolicy::Lenient {
            if du == dv {
                if policy == IngestPolicy::Strict {
                    return Err(IngestError::SelfLoop { v: u, line: lineno });
                }
                repairs.self_loops_dropped += 1;
                continue;
            }
            let key = if du <= dv { (du, dv) } else { (dv, du) };
            if let Some(&at) = seen.get(&key) {
                if policy == IngestPolicy::Strict {
                    return Err(IngestError::DuplicateEdge { u, v, line: lineno });
                }
                triples[at].2 += w;
                repairs.duplicates_merged += 1;
                continue;
            }
            seen.insert(key, triples.len());
        }
        triples.push((du, dv, w));
    }
    let n = original_ids.len() as u64;
    repairs.publish();
    louvain_obs::counter_add("ingest.edges_kept", triples.len() as u64);
    Ok(TextImport {
        edges: EdgeList::try_from_edges(n, triples)?,
        original_ids,
        repairs,
    })
}

/// Split one non-comment line into `(src, dst, weight)`.
fn split_line(t: &str, lineno: usize) -> Result<(u64, u64, f64), IngestError> {
    let mut it = t.split_whitespace();
    let bad = |what: &str| IngestError::Parse {
        line: lineno,
        msg: format!("{what}: {t}"),
    };
    let u: u64 = it
        .next()
        .ok_or_else(|| bad("missing source"))?
        .parse()
        .map_err(|_| bad("bad source id"))?;
    let v: u64 = it
        .next()
        .ok_or_else(|| bad("missing destination"))?
        .parse()
        .map_err(|_| bad("bad destination id"))?;
    let w: f64 = match it.next() {
        None => 1.0,
        Some(s) => s.parse().map_err(|_| bad("bad weight"))?,
    };
    Ok((u, v, w))
}

/// Run `f` over every data line of `path` (comments and blanks skipped),
/// with 1-based line numbers.
fn for_each_data_line(
    path: &Path,
    mut f: impl FnMut(usize, &str) -> Result<(), IngestError>,
) -> Result<(), IngestError> {
    let file = std::fs::File::open(path)?;
    for (lineno, line) in io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        f(lineno + 1, t)?;
    }
    Ok(())
}

/// Streaming two-pass text import: pass 1 scans the file to size the
/// dense id space (`O(distinct vertices)` memory, full line validation
/// with line numbers), pass 2 re-reads it and feeds remapped edges
/// straight into the sink `make_sink(num_vertices)` returns — no
/// RAM-resident [`EdgeList`]. Weight validation (NaN / negative /
/// running-total overflow) matches [`parse_edge_list_policy`] exactly;
/// self-loop and duplicate policy is whatever the *sink* enforces (the
/// slab builder's `IngestPolicy`), which means strict-policy duplicate
/// errors surface at the sink without text line numbers — the price of
/// never materializing the edges. Returns the sink and the
/// `original_id[dense_id]` table. Edge order into the sink is identical
/// to the in-memory parse, so a slab built this way is bit-identical to
/// `Csr::from_edge_list` over the parsed list.
pub fn stream_text_edge_list<S: crate::sink::EdgeSink>(
    path: &Path,
    make_sink: impl FnOnce(u64) -> S,
) -> Result<(S, Vec<u64>), IngestError> {
    let mut remap: FastMap<u64, VertexId> = fast_map();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut total_weight = 0.0f64;
    for_each_data_line(path, |lineno, t| {
        let (u, v, w) = split_line(t, lineno)?;
        check_weight(w, lineno)?;
        total_weight += w;
        if total_weight.is_infinite() {
            return Err(IngestError::BadWeight {
                line: lineno,
                value: w,
                fault: crate::ingest::WeightFault::Overflow,
            });
        }
        for raw in [u, v] {
            if let std::collections::hash_map::Entry::Vacant(e) = remap.entry(raw) {
                e.insert(original_ids.len() as VertexId);
                original_ids.push(raw);
            }
        }
        Ok(())
    })?;
    let changed = |line: usize| IngestError::Parse {
        line,
        msg: "file changed between scan and stream passes".into(),
    };
    let mut sink = make_sink(original_ids.len() as u64);
    for_each_data_line(path, |lineno, t| {
        let (u, v, w) = split_line(t, lineno)?;
        let du = *remap.get(&u).ok_or_else(|| changed(lineno))?;
        let dv = *remap.get(&v).ok_or_else(|| changed(lineno))?;
        sink.edge(du, dv, w)
    })?;
    Ok((sink, original_ids))
}

/// Read a text edge-list file (lenient policy; see [`parse_edge_list`]).
pub fn read_text_edge_list(path: &Path) -> io::Result<TextImport> {
    let f = std::fs::File::open(path)?;
    parse_edge_list(io::BufReader::new(f))
}

/// Read a text edge-list file under an explicit defect policy.
pub fn read_text_edge_list_policy(
    path: &Path,
    policy: IngestPolicy,
) -> Result<TextImport, IngestError> {
    let f = std::fs::File::open(path)?;
    parse_edge_list_policy(io::BufReader::new(f), policy)
}

/// Write an edge list as text (`src dst weight` per line).
pub fn write_text_edge_list(path: &Path, list: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "# {} vertices, {} edges",
        list.num_vertices(),
        list.num_edges()
    )?;
    for e in list.edges() {
        if e.w == 1.0 {
            writeln!(w, "{} {}", e.u, e.v)?;
        } else {
            writeln!(w, "{} {} {}", e.u, e.v, e.w)?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> TextImport {
        parse_edge_list(io::BufReader::new(s.as_bytes())).unwrap()
    }

    #[test]
    fn parses_basic_edges_with_comments() {
        let t = parse("# a comment\n% another\n0 1\n1 2 2.5\n\n2 0\n");
        assert_eq!(t.edges.num_vertices(), 3);
        assert_eq!(t.edges.num_edges(), 3);
        assert_eq!(t.edges.total_weight(), 4.5);
    }

    #[test]
    fn remaps_sparse_ids_densely() {
        let t = parse("1000 42\n42 7\n");
        assert_eq!(t.edges.num_vertices(), 3);
        assert_eq!(t.original_ids, vec![1000, 42, 7]);
        // First edge became (0, 1) after remapping.
        assert_eq!(t.edges.edges()[0].u, 0);
        assert_eq!(t.edges.edges()[0].v, 1);
    }

    #[test]
    fn rejects_garbage() {
        let r = parse_edge_list(io::BufReader::new("0 x\n".as_bytes()));
        assert!(r.is_err());
        let r = parse_edge_list(io::BufReader::new("17\n".as_bytes()));
        assert!(r.is_err());
    }

    #[test]
    fn text_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("louvain-textio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        let el = EdgeList::from_edges(4, [(0, 1, 1.0), (2, 3, 0.5), (1, 1, 2.0)]);
        write_text_edge_list(&path, &el).unwrap();
        let back = read_text_edge_list(&path).unwrap();
        assert_eq!(back.edges.num_edges(), 3);
        assert_eq!(back.edges.total_weight(), 3.5);
    }

    #[test]
    fn weight_defaults_to_one() {
        let t = parse("5 6\n");
        assert_eq!(t.edges.edges()[0].w, 1.0);
    }

    #[test]
    fn bad_weights_are_typed_errors_in_every_policy() {
        for policy in [
            IngestPolicy::Lenient,
            IngestPolicy::Strict,
            IngestPolicy::Repair,
        ] {
            for text in ["0 1 nan\n", "0 1 -2.5\n", "0 1 inf\n"] {
                let r = parse_edge_list_policy(io::BufReader::new(text.as_bytes()), policy);
                assert!(
                    matches!(r, Err(IngestError::BadWeight { line: 1, .. })),
                    "{policy:?} must reject {text:?}"
                );
            }
        }
        // Overflow of the running total, not of any single weight:
        // each addend is finite, the sum saturates at line 2.
        let big = "0 1 1e308\n1 2 1e308\n2 3 1e308\n";
        let r = parse_edge_list_policy(io::BufReader::new(big.as_bytes()), IngestPolicy::Lenient);
        assert!(matches!(r, Err(IngestError::BadWeight { line: 2, .. })));
    }

    #[test]
    fn strict_rejects_duplicates_and_self_loops() {
        let dup = parse_edge_list_policy(
            io::BufReader::new("7 8\n8 7 2.0\n".as_bytes()),
            IngestPolicy::Strict,
        );
        assert!(matches!(
            dup,
            Err(IngestError::DuplicateEdge {
                u: 8,
                v: 7,
                line: 2
            })
        ));
        let lp =
            parse_edge_list_policy(io::BufReader::new("3 3\n".as_bytes()), IngestPolicy::Strict);
        assert!(matches!(lp, Err(IngestError::SelfLoop { v: 3, line: 1 })));
    }

    #[test]
    fn streamed_import_matches_in_memory_parse() {
        let dir = std::env::temp_dir().join("louvain-textio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.txt");
        std::fs::write(
            &path,
            "# sparse ids, duplicates, a self-loop\n1000 42\n42 7 2.5\n7 1000\n1000 42 0.5\n7 7\n",
        )
        .unwrap();
        let in_mem = read_text_edge_list(&path).unwrap();
        let (el, original_ids) = stream_text_edge_list(&path, EdgeList::new).unwrap();
        assert_eq!(el.edges(), in_mem.edges.edges());
        assert_eq!(el.num_vertices(), in_mem.edges.num_vertices());
        assert_eq!(original_ids, in_mem.original_ids);
    }

    #[test]
    fn streamed_import_reports_weight_errors_with_line_numbers() {
        let dir = std::env::temp_dir().join("louvain-textio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream-bad.txt");
        std::fs::write(&path, "0 1\n1 2 nan\n").unwrap();
        let r = stream_text_edge_list(&path, EdgeList::new);
        assert!(matches!(r, Err(IngestError::BadWeight { line: 2, .. })));
    }

    #[test]
    fn repair_merges_duplicates_and_drops_self_loops() {
        let t = parse_edge_list_policy(
            io::BufReader::new("0 1\n1 0 2.0\n0 1 0.5\n2 2\n1 2\n".as_bytes()),
            IngestPolicy::Repair,
        )
        .unwrap();
        assert_eq!(t.repairs.duplicates_merged, 2);
        assert_eq!(t.repairs.self_loops_dropped, 1);
        assert_eq!(t.edges.num_edges(), 2);
        assert_eq!(t.edges.total_weight(), 4.5);
        // Lenient keeps everything, as before.
        let lenient = parse("0 1\n1 0 2.0\n0 1 0.5\n2 2\n1 2\n");
        assert_eq!(lenient.edges.num_edges(), 5);
        assert!(!lenient.repairs.any());
    }
}
