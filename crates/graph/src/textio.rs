//! Text edge-list import/export (SNAP / Matrix-Market-adjacent format).
//!
//! The paper's inputs come "in their native formats from four sources:
//! UFL sparse matrix collection, Network repository, SNAP and LAW", which
//! the authors convert to their binary format. This module covers the
//! common text form: one edge per line, `src dst [weight]`, `#` or `%`
//! comments, arbitrary (non-contiguous) vertex ids remapped densely.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::edgelist::EdgeList;
use crate::hash::{fast_map, FastMap};
use crate::{VertexId, Weight};

/// Result of a text import: the edge list plus the mapping from original
/// (file) ids to the dense ids used in the graph.
#[derive(Debug)]
pub struct TextImport {
    pub edges: EdgeList,
    /// `original_id[dense_id]` — the file's id for each dense vertex.
    pub original_ids: Vec<u64>,
}

/// Parse a text edge list from a reader. Lines: `src dst [weight]`,
/// separated by whitespace; `#`/`%`-prefixed lines are comments.
/// Vertex ids are remapped to `0..n` in order of first appearance.
pub fn parse_edge_list<R: BufRead>(reader: R) -> io::Result<TextImport> {
    let mut remap: FastMap<u64, VertexId> = fast_map();
    let mut original_ids: Vec<u64> = Vec::new();
    let mut triples: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    let dense = |raw: u64, remap: &mut FastMap<u64, VertexId>, orig: &mut Vec<u64>| {
        *remap.entry(raw).or_insert_with(|| {
            orig.push(raw);
            (orig.len() - 1) as VertexId
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let bad = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {what}: {t}", lineno + 1),
            )
        };
        let u: u64 = it
            .next()
            .ok_or_else(|| bad("missing source"))?
            .parse()
            .map_err(|_| bad("bad source id"))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| bad("missing destination"))?
            .parse()
            .map_err(|_| bad("bad destination id"))?;
        let w: f64 = match it.next() {
            None => 1.0,
            Some(s) => s.parse().map_err(|_| bad("bad weight"))?,
        };
        let du = dense(u, &mut remap, &mut original_ids);
        let dv = dense(v, &mut remap, &mut original_ids);
        triples.push((du, dv, w));
    }
    let n = original_ids.len() as u64;
    Ok(TextImport {
        edges: EdgeList::from_edges(n, triples),
        original_ids,
    })
}

/// Read a text edge-list file.
pub fn read_text_edge_list(path: &Path) -> io::Result<TextImport> {
    let f = std::fs::File::open(path)?;
    parse_edge_list(io::BufReader::new(f))
}

/// Write an edge list as text (`src dst weight` per line).
pub fn write_text_edge_list(path: &Path, list: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        w,
        "# {} vertices, {} edges",
        list.num_vertices(),
        list.num_edges()
    )?;
    for e in list.edges() {
        if e.w == 1.0 {
            writeln!(w, "{} {}", e.u, e.v)?;
        } else {
            writeln!(w, "{} {} {}", e.u, e.v, e.w)?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> TextImport {
        parse_edge_list(io::BufReader::new(s.as_bytes())).unwrap()
    }

    #[test]
    fn parses_basic_edges_with_comments() {
        let t = parse("# a comment\n% another\n0 1\n1 2 2.5\n\n2 0\n");
        assert_eq!(t.edges.num_vertices(), 3);
        assert_eq!(t.edges.num_edges(), 3);
        assert_eq!(t.edges.total_weight(), 4.5);
    }

    #[test]
    fn remaps_sparse_ids_densely() {
        let t = parse("1000 42\n42 7\n");
        assert_eq!(t.edges.num_vertices(), 3);
        assert_eq!(t.original_ids, vec![1000, 42, 7]);
        // First edge became (0, 1) after remapping.
        assert_eq!(t.edges.edges()[0].u, 0);
        assert_eq!(t.edges.edges()[0].v, 1);
    }

    #[test]
    fn rejects_garbage() {
        let r = parse_edge_list(io::BufReader::new("0 x\n".as_bytes()));
        assert!(r.is_err());
        let r = parse_edge_list(io::BufReader::new("17\n".as_bytes()));
        assert!(r.is_err());
    }

    #[test]
    fn text_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("louvain-textio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.txt");
        let el = EdgeList::from_edges(4, [(0, 1, 1.0), (2, 3, 0.5), (1, 1, 2.0)]);
        write_text_edge_list(&path, &el).unwrap();
        let back = read_text_edge_list(&path).unwrap();
        assert_eq!(back.edges.num_edges(), 3);
        assert_eq!(back.edges.total_weight(), 3.5);
    }

    #[test]
    fn weight_defaults_to_one() {
        let t = parse("5 6\n");
        assert_eq!(t.edges.edges()[0].w, 1.0);
    }
}
