//! # louvain-graph — graph substrate for distributed Louvain
//!
//! Everything the IPDPS 2018 distributed Louvain paper assumes about its
//! input lives here:
//!
//! * [`EdgeList`] / [`Csr`] — weighted undirected graphs in edge-list and
//!   compressed-sparse-row form (the paper's storage format),
//! * [`community`] — community assignments and the Eq. 2 modularity the
//!   paper optimizes, plus shared-memory coarsening,
//! * [`partition`] — the 1D edge-balanced vertex distribution of
//!   Section IV ("each process receives roughly the same number of edges;
//!   no clever graph partitioning"),
//! * [`dist`] — per-rank local graph pieces with global edge endpoints,
//! * [`binio`] — the binary edge-list file format the paper converts all
//!   inputs to, with per-rank range reads standing in for MPI I/O,
//! * [`gen`] — synthetic workload generators: LFR (ground-truth quality,
//!   Table VII), SSCA#2 (weak scaling, Table V/Fig 4), RMAT social
//!   networks, banded meshes (`channel`/`nlpkkt`-like), web-like
//!   power-law clique graphs, and Erdős–Rényi noise graphs.
//!
//! Weight convention (used consistently everywhere, see DESIGN.md §6):
//! every undirected edge `{u,v}` is stored as both directed arcs `(u,v)`
//! and `(v,u)`; a self-loop is stored once. The weighted degree of a
//! vertex is the sum of its outgoing arc weights, `2m` is the sum of all
//! weighted degrees, and modularity is exactly invariant under coarsening.

pub mod atomic;
pub mod binio;
pub mod community;
pub mod csr;
pub mod dist;
pub mod edgelist;
pub mod gen;
pub mod hash;
pub mod ingest;
pub mod metrics;
pub mod partition;
pub mod sink;
pub mod textio;

pub use community::{modularity, CommunityAssignment};
pub use csr::Csr;
pub use dist::LocalGraph;
pub use edgelist::EdgeList;
pub use ingest::{IngestError, IngestPolicy, RepairStats, WeightFault};
pub use partition::VertexPartition;
pub use sink::EdgeSink;

/// Global vertex identifier. The paper targets graphs with more than 4
/// billion edges and 100M+ vertices, so identifiers are 64-bit.
pub type VertexId = u64;

/// Edge weight. Input graphs are unweighted (weight 1) but coarsened
/// graphs accumulate real-valued weights.
pub type Weight = f64;
