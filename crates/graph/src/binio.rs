//! Binary edge-list file format and range reads.
//!
//! The paper converts every input to "an edge list based binary format, and
//! used the binary file as an input", reading it with MPI I/O so that every
//! rank loads only its byte range. This module reproduces that: a fixed
//! 24-byte header followed by 24-byte `(u64 src, u64 dst, f64 weight)`
//! records, plus [`read_edge_range`] for per-rank loading.
//!
//! Layout (little endian):
//! ```text
//! magic  u64  = 0x4C56_4752_4250_4831  ("LVGRBPH1")
//! n      u64  number of vertices
//! m      u64  number of undirected edge records
//! m × { src u64, dst u64, weight f64 }
//! ```

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::edgelist::EdgeList;
use crate::{VertexId, Weight};

const MAGIC: u64 = 0x4C56_4752_4250_4831;
/// The low byte of [`MAGIC`] carries the format version (ASCII `'1'`);
/// the remaining seven bytes are the fixed `"LVGRBPH"` signature.
/// Public so callers (the CLI) can sniff file types by their first
/// eight bytes.
pub const MAGIC_SIGNATURE: u64 = MAGIC & !0xFF;
const FORMAT_VERSION: u8 = (MAGIC & 0xFF) as u8;
const HEADER_BYTES: u64 = 24;
const RECORD_BYTES: u64 = 24;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Header of a binary graph file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub num_vertices: u64,
    pub num_edges: u64,
}

/// Write an edge list to `path` in the binary format.
pub fn write_edge_list(path: &Path, list: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC.to_le_bytes())?;
    w.write_all(&list.num_vertices().to_le_bytes())?;
    w.write_all(&(list.num_edges() as u64).to_le_bytes())?;
    for e in list.edges() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.w.to_le_bytes())?;
    }
    w.flush()
}

/// Read only the header, validating the magic signature, the format
/// version, and that the file is long enough to hold the edge records
/// the header claims. Each rejection carries a descriptive
/// [`io::ErrorKind::InvalidData`] error rather than a raw read failure.
pub fn read_header(path: &Path) -> io::Result<Header> {
    let mut r = File::open(path)?;
    let file_len = r.metadata()?.len();
    if file_len < HEADER_BYTES {
        return Err(bad_data(format!(
            "truncated graph file {}: {file_len} bytes, but the header alone is {HEADER_BYTES} bytes",
            path.display()
        )));
    }
    let mut buf = [0u8; HEADER_BYTES as usize];
    r.read_exact(&mut buf)?;
    let magic = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    if magic & !0xFF != MAGIC_SIGNATURE {
        return Err(bad_data(format!(
            "not a louvain binary graph file {}: bad magic {magic:#018x} (expected signature {MAGIC_SIGNATURE:#018x})",
            path.display()
        )));
    }
    let version = (magic & 0xFF) as u8;
    if version != FORMAT_VERSION {
        return Err(bad_data(format!(
            "unsupported graph format version {:?} in {} (this build reads version {:?})",
            version as char,
            path.display(),
            FORMAT_VERSION as char
        )));
    }
    let header = Header {
        num_vertices: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        num_edges: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
    };
    let need = header
        .num_edges
        .checked_mul(RECORD_BYTES)
        .and_then(|b| b.checked_add(HEADER_BYTES))
        .ok_or_else(|| {
            bad_data(format!(
                "corrupt graph header in {}: edge count {} overflows the file size",
                path.display(),
                header.num_edges
            ))
        })?;
    if file_len < need {
        return Err(bad_data(format!(
            "truncated edge records in {}: header claims {} edges ({need} bytes) but the file has {file_len} bytes",
            path.display(),
            header.num_edges
        )));
    }
    Ok(header)
}

/// Read edge records `lo..hi` (record indices). This is the MPI-I/O-style
/// range read: each rank calls it with its own slice of the file.
pub fn read_edge_range(
    path: &Path,
    lo: u64,
    hi: u64,
) -> io::Result<Vec<(VertexId, VertexId, Weight)>> {
    let header = read_header(path)?;
    assert!(
        lo <= hi && hi <= header.num_edges,
        "range {lo}..{hi} out of bounds"
    );
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(HEADER_BYTES + lo * RECORD_BYTES))?;
    let mut r = BufReader::new(f);
    let mut out = Vec::with_capacity((hi - lo) as usize);
    let mut rec = [0u8; RECORD_BYTES as usize];
    for _ in lo..hi {
        r.read_exact(&mut rec)?;
        out.push((
            u64::from_le_bytes(rec[0..8].try_into().unwrap()),
            u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            f64::from_le_bytes(rec[16..24].try_into().unwrap()),
        ));
    }
    Ok(out)
}

/// Stream every edge record into `sink` without materializing an
/// [`EdgeList`] — O(1) memory regardless of file size. This is the
/// binary-to-slab ingest path (`louvain ingest`); the sink enforces
/// whatever defect policy it was built with. Returns the validated
/// header.
pub fn stream_edge_records<S: crate::sink::EdgeSink>(
    path: &Path,
    sink: &mut S,
) -> Result<Header, crate::ingest::IngestError> {
    let header = read_header(path)?;
    let mut f = File::open(path)?;
    f.seek(SeekFrom::Start(HEADER_BYTES))?;
    let mut r = BufReader::new(f);
    let mut rec = [0u8; RECORD_BYTES as usize];
    for _ in 0..header.num_edges {
        r.read_exact(&mut rec)?;
        sink.edge(
            u64::from_le_bytes(rec[0..8].try_into().unwrap()),
            u64::from_le_bytes(rec[8..16].try_into().unwrap()),
            f64::from_le_bytes(rec[16..24].try_into().unwrap()),
        )?;
    }
    Ok(header)
}

/// Read the whole file back into an [`EdgeList`].
pub fn read_edge_list(path: &Path) -> io::Result<EdgeList> {
    let header = read_header(path)?;
    let records = read_edge_range(path, 0, header.num_edges)?;
    Ok(EdgeList::from_edges(header.num_vertices, records))
}

/// The record range rank `rank` of `p` should read (balanced split).
pub fn rank_record_range(num_edges: u64, rank: usize, p: usize) -> (u64, u64) {
    let lo = num_edges * rank as u64 / p as u64;
    let hi = num_edges * (rank as u64 + 1) / p as u64;
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("louvain-binio-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> EdgeList {
        EdgeList::from_edges(5, [(0, 1, 1.0), (1, 2, 2.5), (3, 4, 0.25), (2, 2, 1.0)])
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip.bin");
        let el = sample();
        write_edge_list(&path, &el).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 4);
        assert_eq!(back.edges(), el.edges());
    }

    #[test]
    fn header_matches() {
        let path = tmp("header.bin");
        write_edge_list(&path, &sample()).unwrap();
        let h = read_header(&path).unwrap();
        assert_eq!(
            h,
            Header {
                num_vertices: 5,
                num_edges: 4
            }
        );
    }

    #[test]
    fn range_reads_compose_to_whole_file() {
        let path = tmp("ranges.bin");
        let el = sample();
        write_edge_list(&path, &el).unwrap();
        let p = 3;
        let mut all = Vec::new();
        for rank in 0..p {
            let (lo, hi) = rank_record_range(4, rank, p);
            all.extend(read_edge_range(&path, lo, hi).unwrap());
        }
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], (0, 1, 1.0));
        assert_eq!(all[3], (2, 2, 1.0));
    }

    #[test]
    fn rank_ranges_are_disjoint_and_cover() {
        let m = 103u64;
        let p = 8;
        let mut covered = 0u64;
        for rank in 0..p {
            let (lo, hi) = rank_record_range(m, rank, p);
            assert!(lo <= hi);
            assert_eq!(lo, covered);
            covered = hi;
        }
        assert_eq!(covered, m);
    }

    #[test]
    fn streamed_records_match_read_edge_list() {
        let path = tmp("stream.bin");
        let el = sample();
        write_edge_list(&path, &el).unwrap();
        let mut sunk = EdgeList::new(5);
        let h = stream_edge_records(&path, &mut sunk).unwrap();
        assert_eq!(h.num_edges, 4);
        assert_eq!(sunk.edges(), el.edges());
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("bad.bin");
        std::fs::write(&path, [0u8; 48]).unwrap();
        let err = read_header(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn truncated_header_rejected() {
        let path = tmp("short.bin");
        std::fs::write(&path, MAGIC.to_le_bytes()).unwrap();
        let err = read_header(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated graph file"), "{err}");
    }

    #[test]
    fn unsupported_version_rejected() {
        let path = tmp("version.bin");
        write_edge_list(&path, &sample()).unwrap();
        // Bump the version byte ('1' → '2') while keeping the signature.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'2';
        std::fs::write(&path, bytes).unwrap();
        let err = read_header(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("unsupported graph format"),
            "{err}"
        );
        assert!(err.to_string().contains('2'), "{err}");
    }

    #[test]
    fn truncated_records_rejected() {
        let path = tmp("cut.bin");
        write_edge_list(&path, &sample()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let err = read_header(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated edge records"), "{err}");
    }
}
