//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The Louvain inner loop is dominated by `community id → accumulated edge
//! weight` map operations with `u64` keys. SipHash (std's default) is a
//! measurable bottleneck there, so this module provides an FxHash-style
//! multiply-rotate hasher (the rustc hasher) implemented in-house to keep
//! the dependency set to the approved list.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style hasher: `state = (state rotl 5 ^ word) * K` per 8 bytes.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// Construct an empty [`FastMap`].
pub fn fast_map<K, V>() -> FastMap<K, V> {
    FastMap::default()
}

/// Construct an empty [`FastMap`] with capacity.
pub fn fast_map_with_capacity<K, V>(cap: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Construct an empty [`FastSet`].
pub fn fast_set<K>() -> FastSet<K> {
    FastSet::default()
}

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
///
/// Used for deterministic "coin flips" that do not depend on thread
/// scheduling: `coin_u01(mix64(seed ^ vertex ^ ...))`.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a mixed hash to a uniform `[0, 1)` double.
#[inline]
pub fn coin_u01(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic shuffled permutation of `0..n` (Fisher–Yates driven by
/// [`mix64`]).
///
/// Louvain sweeps must visit vertices in randomized order: on regularly
/// numbered graphs (grids, bands), index order produces systematic
/// boundary drift that over-merges communities.
pub fn shuffled_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = mix64(seed ^ 0x0005_eed0_5eed);
    for i in (1..n).rev() {
        state = mix64(state);
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = fast_map();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&i], i * 2);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn hasher_distributes_sequential_keys() {
        // Sequential integers must not collide in the low bits the table
        // actually uses.
        let mut buckets = [0usize; 64];
        for i in 0..64_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 64) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((usize::MAX, 0), |(lo, hi), &b| (lo.min(b), hi.max(b)));
        assert!(max < 2 * min, "bucket skew: min={min} max={max}");
    }

    #[test]
    fn byte_and_word_writes_agree_on_8_bytes() {
        let mut a = FxHasher::default();
        a.write_u64(0x0123_4567_89ab_cdef);
        let mut b = FxHasher::default();
        b.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn shuffled_order_is_a_permutation() {
        let order = shuffled_order(1_000, 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1_000).collect::<Vec<_>>());
        // Deterministic in the seed, different across seeds.
        assert_eq!(order, shuffled_order(1_000, 7));
        assert_ne!(order, shuffled_order(1_000, 8));
        // Actually shuffled (identity has every element in place).
        let in_place = order.iter().enumerate().filter(|(i, &v)| *i == v).count();
        assert!(in_place < 50, "{in_place} fixed points");
    }

    #[test]
    fn mix64_coins_are_uniform_ish() {
        let mean: f64 = (0..10_000u64).map(|i| coin_u01(mix64(i))).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        // Range check.
        for i in 0..1_000u64 {
            let c = coin_u01(mix64(i));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn set_deduplicates() {
        let mut s: FastSet<u64> = fast_set();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
