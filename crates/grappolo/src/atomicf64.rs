//! Re-export of the shared atomic `f64` (lives in `louvain-graph` so the
//! distributed algorithm's intra-rank parallel sweep can use it too).

pub use louvain_graph::atomic::AtomicF64;
