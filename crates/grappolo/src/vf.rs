//! Vertex following (Grappolo §4.1 of Lu et al. 2015).
//!
//! Degree-1 vertices can never profitably sit in their own community: the
//! optimum always co-locates them with their unique neighbor. Pre-merging
//! them shrinks the effective work of the first phase. We implement it as
//! an initial assignment: each degree-1 vertex adopts the community of its
//! unique neighbor, following chains (a path of degree-1 vertices all
//! collapse onto the chain's anchor).

use louvain_graph::{Csr, VertexId};

/// Initial community assignment implementing vertex following.
/// Non-degree-1 vertices start in their own singleton community.
pub fn vertex_following_assignment(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut comm: Vec<VertexId> = (0..n as VertexId).collect();
    // parent[v] = unique neighbor for degree-1 vertices (excluding pure
    // self-loop rows).
    for v in 0..n as VertexId {
        let mut non_loop = g.neighbors(v).filter(|&(u, _)| u != v);
        if let (Some((u, _)), None) = (non_loop.next(), non_loop.next()) {
            if g.degree(v) <= 2 {
                // degree counts arcs; a single non-loop neighbor plus at
                // most one self-loop arc means "degree-1" in the paper's
                // sense.
                comm[v as usize] = u;
            }
        }
    }
    // Follow chains with path halving; break 2-cycles (two mutually
    // following degree-1 vertices) toward the smaller id.
    for v in 0..n {
        let mut cur = v as VertexId;
        let mut hops = 0;
        loop {
            let next = comm[cur as usize];
            if next == cur {
                break;
            }
            // 2-cycle: pick the min id as the anchor.
            if comm[next as usize] == cur {
                let anchor = cur.min(next);
                comm[cur as usize] = anchor;
                comm[next as usize] = anchor;
                cur = anchor;
                break;
            }
            cur = next;
            hops += 1;
            if hops > n {
                break; // defensive: malformed cycle
            }
        }
        comm[v] = cur;
    }
    comm
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::EdgeList;

    #[test]
    fn pendant_joins_its_neighbor() {
        // Triangle 0-1-2 with pendant 3 attached to 0.
        let g = Csr::from_edge_list(EdgeList::from_edges(
            4,
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (0, 3, 1.0)],
        ));
        let comm = vertex_following_assignment(&g);
        assert_eq!(comm[3], 0);
        assert_eq!(comm[0], 0);
        assert_eq!(comm[1], 1);
    }

    #[test]
    fn chain_collapses_to_anchor() {
        // 0-1-2-3 path hanging off triangle 3-4-5: vertices 0,1,2 are a
        // degree-1 chain (0 deg1, 1 deg2 ...). Only true degree-1 vertices
        // follow: 0 follows 1; 1 has degree 2 so it stays.
        let g = Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
            ],
        ));
        let comm = vertex_following_assignment(&g);
        assert_eq!(comm[0], 1);
        assert_eq!(comm[1], 1);
    }

    #[test]
    fn isolated_pair_breaks_cycle_to_min_id() {
        // Single edge 0-1: both are degree-1 and follow each other.
        let g = Csr::from_edge_list(EdgeList::from_edges(2, [(0, 1, 1.0)]));
        let comm = vertex_following_assignment(&g);
        assert_eq!(comm, vec![0, 0]);
    }

    #[test]
    fn non_pendants_stay_singleton() {
        let g = Csr::from_edge_list(EdgeList::from_edges(
            3,
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
        ));
        assert_eq!(vertex_following_assignment(&g), vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_only_vertex_stays() {
        let g = Csr::from_edge_list(EdgeList::from_edges(2, [(0, 0, 1.0), (0, 1, 1.0)]));
        let comm = vertex_following_assignment(&g);
        // Vertex 1 is a pendant of 0.
        assert_eq!(comm[1], 0);
    }
}
