//! Configuration for the shared-memory Louvain runner.

/// Early-termination behaviour (Eq. 3 of the IPDPS paper, retrofitted into
/// the multithreaded implementation for Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EtMode {
    /// No early termination (α = 0 behaviour).
    Off,
    /// Probabilistic per-vertex deactivation with decay rate `alpha`.
    On { alpha: f64 },
}

/// Tunables of [`crate::ParallelLouvain`].
#[derive(Debug, Clone, Copy)]
pub struct GrappoloConfig {
    /// Modularity-gain threshold τ ending a phase and the whole run.
    pub threshold: f64,
    /// Safety cap on phases.
    pub max_phases: usize,
    /// Safety cap on iterations within one phase.
    pub max_iterations: usize,
    /// Number of rayon threads (0 = rayon's default pool size).
    pub threads: usize,
    /// Process vertices color class by color class (distance-1 coloring).
    pub coloring: bool,
    /// Pre-merge degree-1 vertices into their neighbor's community.
    pub vertex_following: bool,
    /// Early termination heuristic.
    pub early_termination: EtMode,
    /// Seed for the deterministic ET coin flips.
    pub seed: u64,
}

impl Default for GrappoloConfig {
    fn default() -> Self {
        Self {
            threshold: 1e-6,
            max_phases: 40,
            max_iterations: 300,
            threads: 0,
            coloring: false,
            vertex_following: false,
            early_termination: EtMode::Off,
            seed: 0xC0FFEE,
        }
    }
}

impl GrappoloConfig {
    /// The configuration used for the paper's Table I sweep: fixed τ,
    /// early termination with the given α.
    pub fn with_et(alpha: f64) -> Self {
        Self {
            early_termination: EtMode::On { alpha },
            ..Self::default()
        }
    }

    /// Single-threaded ("serial Grappolo", the reference for Table II
    /// modularities).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// The VFC composition of Lu et al.: **V**ertex **F**ollowing to
    /// collapse degree-1 fringes before phase 1, plus distance-1
    /// **C**oloring so each sweep processes conflict-free classes — the
    /// pairing the 15-418 exemplar and §4 of the Grappolo paper show
    /// gives multi-x speedups at negligible quality cost.
    pub fn vfc(threads: usize) -> Self {
        Self {
            threads,
            coloring: true,
            vertex_following: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let c = GrappoloConfig::default();
        assert_eq!(c.threshold, 1e-6);
        assert_eq!(c.early_termination, EtMode::Off);
    }

    #[test]
    fn with_et_sets_alpha() {
        let c = GrappoloConfig::with_et(0.25);
        assert_eq!(c.early_termination, EtMode::On { alpha: 0.25 });
    }

    #[test]
    fn vfc_enables_both_heuristics() {
        let c = GrappoloConfig::vfc(4);
        assert!(c.coloring);
        assert!(c.vertex_following);
        assert_eq!(c.threads, 4);
    }
}
