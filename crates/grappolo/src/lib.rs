//! # grappolo — shared-memory multithreaded Louvain
//!
//! A Rust reproduction of the Grappolo package (Lu, Halappanavar,
//! Kalyanaraman, *Parallel heuristics for scalable community detection*,
//! Parallel Computing 47, 2015) — the state-of-the-art shared-memory
//! comparator used throughout the IPDPS 2018 distributed Louvain paper
//! (Tables I and III).
//!
//! Features reproduced:
//!
//! * multithreaded Louvain sweeps with relaxed (stale-tolerant) community
//!   state, minimum-label tie-breaking for convergence,
//! * optional **distance-1 coloring**: vertices are processed color class
//!   by color class so concurrently moved vertices are never adjacent,
//! * optional **vertex following**: degree-1 vertices are pre-merged into
//!   their unique neighbor's community,
//! * the paper's **early termination** heuristic (Eq. 3) retrofitted into
//!   the multithreaded code, as done for Table I of the IPDPS paper.
//!
//! ## Example
//!
//! ```
//! use grappolo::{GrappoloConfig, ParallelLouvain};
//! use louvain_graph::gen::{lfr, LfrParams};
//!
//! let g = lfr(LfrParams::small(1_000, 3)).graph;
//! let result = ParallelLouvain::new(GrappoloConfig::default()).run(&g);
//! assert!(result.modularity > 0.5);
//! ```

// The public entry points below (coloring, VF, ET) are shared
// infrastructure for the distributed path as well as the local runner;
// deny dead code so unused drift is caught at build time instead of
// silently accumulating.
#![deny(dead_code)]

mod atomicf64;
mod coloring;
mod config;
mod et;
mod phase;
mod runner;
mod vf;

pub use atomicf64::AtomicF64;
pub use coloring::greedy_coloring;
pub use config::{EtMode, GrappoloConfig};
pub use et::{EtState, INACTIVE_CUTOFF};
pub use phase::PhaseOutcome;
pub use runner::{LouvainResult, ParallelLouvain, PhaseTrace};
pub use vf::vertex_following_assignment;
