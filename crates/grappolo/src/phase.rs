//! One Louvain phase: repeated parallel sweeps over all vertices until the
//! modularity gain between iterations drops below τ.
//!
//! Community state is shared through atomics and read without locking —
//! threads see slightly stale neighbor information, exactly like Grappolo
//! (and like the distributed algorithm sees ghost state from the previous
//! exchange). Ties are broken toward the minimum community label, which
//! Lu et al. show prevents the oscillation pathologies of parallel
//! Louvain.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use rayon::prelude::*;

use louvain_graph::hash::fast_map;
use louvain_graph::{Csr, VertexId, Weight};

use crate::atomicf64::AtomicF64;
use crate::coloring::greedy_coloring;
use crate::config::{EtMode, GrappoloConfig};
use crate::et::EtState;

/// Result of one phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Community per vertex (ids are vertex ids of this phase's graph).
    pub assignment: Vec<VertexId>,
    /// Iterations executed.
    pub iterations: usize,
    /// Modularity after the final iteration.
    pub modularity: f64,
    /// Modularity after each iteration (for convergence plots).
    pub curve: Vec<f64>,
}

struct PhaseState<'g> {
    g: &'g Csr,
    k: Vec<Weight>,
    two_m: Weight,
    comm: Vec<AtomicU64>,
    a_tot: Vec<AtomicF64>,
    /// Community sizes — needed for the singleton-swap guard.
    size: Vec<AtomicU64>,
    moved: Vec<AtomicBool>,
}

impl<'g> PhaseState<'g> {
    fn new(g: &'g Csr, init: &[VertexId]) -> Self {
        let n = g.num_vertices();
        assert_eq!(init.len(), n);
        let k = g.weighted_degrees();
        let two_m = g.two_m();
        let comm: Vec<AtomicU64> = init.iter().map(|&c| AtomicU64::new(c)).collect();
        let a_tot: Vec<AtomicF64> = (0..n).map(|_| AtomicF64::new(0.0)).collect();
        let size: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        for v in 0..n {
            a_tot[init[v] as usize].fetch_add(k[v]);
            size[init[v] as usize].fetch_add(1, Ordering::Relaxed);
        }
        let moved = (0..n).map(|_| AtomicBool::new(false)).collect();
        Self {
            g,
            k,
            two_m,
            comm,
            a_tot,
            size,
            moved,
        }
    }

    /// Evaluate and (if profitable) apply the best move for vertex `v`.
    #[inline]
    fn try_move(&self, v: usize) {
        let cu = self.comm[v].load(Ordering::Relaxed);
        let kv = self.k[v];
        // Accumulate edge weight toward each neighboring community,
        // excluding v's own self-loop.
        let mut weights = fast_map::<VertexId, Weight>();
        for (u, w) in self.g.neighbors(v as VertexId) {
            if u == v as VertexId {
                continue;
            }
            let c = self.comm[u as usize].load(Ordering::Relaxed);
            *weights.entry(c).or_insert(0.0) += w;
        }
        if weights.is_empty() {
            return;
        }
        let e_cu = weights.get(&cu).copied().unwrap_or(0.0);
        let stay = e_cu - kv * (self.a_tot[cu as usize].load() - kv) / self.two_m;
        let mut best_c = cu;
        let mut best_score = f64::NEG_INFINITY;
        for (&c, &e_vc) in &weights {
            if c == cu {
                continue;
            }
            let score = e_vc - kv * self.a_tot[c as usize].load() / self.two_m;
            // Strictly better, or equal with smaller label (min-label
            // tie-break; labels strictly decrease so this terminates).
            if score > best_score + 1e-12 || ((score - best_score).abs() <= 1e-12 && c < best_c) {
                best_score = score;
                best_c = c;
            }
        }
        let mut do_move = best_c != cu
            && (best_score > stay + 1e-12 || ((best_score - stay).abs() <= 1e-12 && best_c < cu));
        // Singleton-swap guard (Lu et al. minimum labeling): two singleton
        // vertices evaluating each other concurrently would swap
        // communities forever; only the one moving toward the smaller
        // community id may proceed.
        if do_move
            && self.size[cu as usize].load(Ordering::Relaxed) == 1
            && self.size[best_c as usize].load(Ordering::Relaxed) == 1
            && best_c > cu
        {
            do_move = false;
        }
        if do_move {
            self.comm[v].store(best_c, Ordering::Relaxed);
            self.a_tot[cu as usize].fetch_add(-kv);
            self.a_tot[best_c as usize].fetch_add(kv);
            self.size[cu as usize].fetch_sub(1, Ordering::Relaxed);
            self.size[best_c as usize].fetch_add(1, Ordering::Relaxed);
            self.moved[v].store(true, Ordering::Relaxed);
        }
    }

    /// Modularity of the current state (Eq. 2).
    fn modularity(&self) -> f64 {
        if self.two_m == 0.0 {
            return 0.0;
        }
        let e_in: f64 = (0..self.g.num_vertices())
            .into_par_iter()
            .map(|v| {
                let cv = self.comm[v].load(Ordering::Relaxed);
                self.g
                    .neighbors(v as VertexId)
                    .filter(|&(u, _)| self.comm[u as usize].load(Ordering::Relaxed) == cv)
                    .map(|(_, w)| w)
                    .sum::<f64>()
            })
            .sum();
        let a2: f64 = self
            .a_tot
            .par_iter()
            .map(|a| {
                let v = a.load();
                v * v
            })
            .sum();
        e_in / self.two_m - a2 / (self.two_m * self.two_m)
    }

    fn snapshot_assignment(&self) -> Vec<VertexId> {
        self.comm
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Run the Louvain iterations of one phase.
///
/// `phase_idx` seeds the deterministic early-termination coins; `init` is
/// the starting assignment (singletons, or vertex following on phase 0).
pub fn run_phase(
    g: &Csr,
    init: &[VertexId],
    cfg: &GrappoloConfig,
    phase_idx: usize,
) -> PhaseOutcome {
    let n = g.num_vertices();
    let state = PhaseState::new(g, init);
    // Randomized sweep order (seeded): index-order sweeps over-merge on
    // regularly numbered graphs such as grids and bands.
    let order =
        louvain_graph::hash::shuffled_order(n, cfg.seed ^ (phase_idx as u64).wrapping_mul(0x9e37));
    let classes = if cfg.coloring {
        let _s = louvain_obs::span!(cat "grappolo", "grappolo/coloring", phase = phase_idx);
        Some(greedy_coloring(g).1)
    } else {
        None
    };
    let mut et = match cfg.early_termination {
        EtMode::On { alpha } => Some(EtState::new(n, alpha, cfg.seed)),
        EtMode::Off => None,
    };

    let mut curve = Vec::new();
    let mut prev_q = f64::NEG_INFINITY;
    let mut iterations = 0;
    while iterations < cfg.max_iterations {
        iterations += 1;
        state
            .moved
            .par_iter()
            .for_each(|m| m.store(false, Ordering::Relaxed));

        let active = |v: usize| match &et {
            Some(et) => et.is_active(phase_idx, iterations, v),
            None => true,
        };
        match &classes {
            Some(classes) => {
                for class in classes {
                    class.par_iter().for_each(|&v| {
                        if active(v as usize) {
                            state.try_move(v as usize);
                        }
                    });
                }
            }
            None => {
                order.par_iter().for_each(|&v| {
                    if active(v) {
                        state.try_move(v);
                    }
                });
            }
        }

        let moves: usize = state
            .moved
            .par_iter()
            .map(|m| usize::from(m.load(Ordering::Relaxed)))
            .sum();
        if let Some(et) = &mut et {
            for v in 0..n {
                et.update(v, state.moved[v].load(Ordering::Relaxed));
            }
        }

        let q = state.modularity();
        curve.push(q);
        if moves == 0 || (prev_q.is_finite() && q - prev_q <= cfg.threshold) {
            break;
        }
        prev_q = q;
    }

    PhaseOutcome {
        assignment: state.snapshot_assignment(),
        iterations,
        modularity: *curve.last().unwrap_or(&0.0),
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::community::{modularity, singleton_assignment};
    use louvain_graph::EdgeList;

    fn two_triangles() -> Csr {
        Csr::from_edge_list(EdgeList::from_edges(
            6,
            [
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
                (2, 3, 1.0),
            ],
        ))
    }

    #[test]
    fn phase_finds_the_two_triangles() {
        let g = two_triangles();
        let cfg = GrappoloConfig {
            threads: 1,
            ..Default::default()
        };
        let out = run_phase(&g, &singleton_assignment(6), &cfg, 0);
        assert_eq!(out.assignment[0], out.assignment[1]);
        assert_eq!(out.assignment[1], out.assignment[2]);
        assert_eq!(out.assignment[3], out.assignment[4]);
        assert_eq!(out.assignment[4], out.assignment[5]);
        assert_ne!(out.assignment[0], out.assignment[3]);
        assert!(out.modularity > 0.3);
    }

    #[test]
    fn reported_modularity_matches_reference_computation() {
        let g = two_triangles();
        let cfg = GrappoloConfig::default();
        let out = run_phase(&g, &singleton_assignment(6), &cfg, 0);
        let q_ref = modularity(&g, &out.assignment);
        assert!((out.modularity - q_ref).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_until_convergence() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(800, 7)).graph;
        let cfg = GrappoloConfig::default();
        let out = run_phase(&g, &singleton_assignment(800), &cfg, 0);
        for w in out.curve.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "curve regressed: {:?}", w);
        }
    }

    #[test]
    fn coloring_variant_also_converges() {
        let g = two_triangles();
        let cfg = GrappoloConfig {
            coloring: true,
            ..Default::default()
        };
        let out = run_phase(&g, &singleton_assignment(6), &cfg, 0);
        assert!(out.modularity > 0.3);
    }

    #[test]
    fn et_alpha_one_uses_fewer_iterations() {
        let g = louvain_graph::gen::lfr(louvain_graph::gen::LfrParams::small(2_000, 3)).graph;
        let base = run_phase(
            &g,
            &singleton_assignment(2_000),
            &GrappoloConfig::default(),
            0,
        );
        let et = run_phase(
            &g,
            &singleton_assignment(2_000),
            &GrappoloConfig::with_et(1.0),
            0,
        );
        assert!(
            et.iterations <= base.iterations,
            "ET {} vs base {}",
            et.iterations,
            base.iterations
        );
        // Within a single phase aggressive ET may lag in quality — the
        // multi-phase runner recovers it (tested in runner.rs). Here we
        // only require meaningful progress over the singleton start (the
        // exact value varies with parallel scheduling).
        assert!(
            et.modularity > 0.3,
            "et {} base {}",
            et.modularity,
            base.modularity
        );
    }

    #[test]
    fn empty_graph_terminates() {
        let g = Csr::from_edge_list(EdgeList::new(4));
        let out = run_phase(&g, &singleton_assignment(4), &GrappoloConfig::default(), 0);
        assert_eq!(out.modularity, 0.0);
        assert!(out.iterations >= 1);
    }
}
