//! Multi-phase driver: run phases, coarsen between them, flatten the
//! hierarchy back onto the original vertices.

use std::time::Duration;

use louvain_graph::community::{coarsen, project, singleton_assignment};
use louvain_graph::{Csr, VertexId};

use crate::config::GrappoloConfig;
use crate::phase::{run_phase, PhaseOutcome};
use crate::vf::vertex_following_assignment;

/// Per-phase record for convergence analysis.
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    pub iterations: usize,
    pub modularity: f64,
    pub num_vertices: usize,
    pub curve: Vec<f64>,
}

/// Final result of a shared-memory Louvain run.
#[derive(Debug, Clone)]
pub struct LouvainResult {
    /// Community id per original vertex (dense in `0..num_communities`).
    pub assignment: Vec<VertexId>,
    /// Final modularity.
    pub modularity: f64,
    pub num_communities: usize,
    pub phases: usize,
    pub total_iterations: usize,
    pub phase_traces: Vec<PhaseTrace>,
    pub elapsed: Duration,
}

/// The shared-memory multithreaded Louvain algorithm.
#[derive(Debug, Clone)]
pub struct ParallelLouvain {
    cfg: GrappoloConfig,
}

impl ParallelLouvain {
    pub fn new(cfg: GrappoloConfig) -> Self {
        Self { cfg }
    }

    pub fn config(&self) -> &GrappoloConfig {
        &self.cfg
    }

    /// Run to convergence on `g`.
    pub fn run(&self, g: &Csr) -> LouvainResult {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.cfg.threads) // 0 = default
            .build()
            .expect("failed to build rayon pool");
        pool.install(|| self.run_inner(g))
    }

    fn run_inner(&self, g: &Csr) -> LouvainResult {
        let watch = louvain_obs::Stopwatch::start();
        let cfg = &self.cfg;
        let n0 = g.num_vertices();

        let mut owned: Option<Csr> = None;
        // original vertex -> vertex of the current (coarse) graph
        let mut flat: Vec<VertexId> = (0..n0 as VertexId).collect();
        let mut traces: Vec<PhaseTrace> = Vec::new();
        let mut prev_q = f64::NEG_INFINITY;
        let mut total_iterations = 0;

        for phase_idx in 0..cfg.max_phases {
            let cur: &Csr = owned.as_ref().unwrap_or(g);
            let n = cur.num_vertices();
            let init = if phase_idx == 0 && cfg.vertex_following {
                vertex_following_assignment(cur)
            } else {
                singleton_assignment(n)
            };
            let mut phase_span = louvain_obs::span!(cat "grappolo", "grappolo/phase", phase = phase_idx, vertices = n);
            let out: PhaseOutcome = run_phase(cur, &init, cfg, phase_idx);
            phase_span.arg("iterations", out.iterations);
            phase_span.arg("q", out.modularity);
            drop(phase_span);
            total_iterations += out.iterations;
            traces.push(PhaseTrace {
                iterations: out.iterations,
                modularity: out.modularity,
                num_vertices: n,
                curve: out.curve.clone(),
            });

            let gain = out.modularity - prev_q;
            let converged = prev_q.is_finite() && gain <= cfg.threshold;
            prev_q = prev_q.max(out.modularity);
            if converged {
                break;
            }

            let _coarsen_span =
                louvain_obs::span!(cat "grappolo", "grappolo/coarsen", phase = phase_idx);
            let (coarse, dense) = coarsen(cur, &out.assignment);
            flat = project(&flat, &dense);
            let compressed = coarse.num_vertices() < n;
            owned = Some(coarse);
            if !compressed {
                break;
            }
        }

        let num_communities = louvain_graph::community::count_communities(&flat);
        let (dense_flat, _) = louvain_graph::community::renumber(&flat);
        LouvainResult {
            assignment: dense_flat,
            modularity: prev_q.max(0.0f64.min(prev_q)),
            num_communities,
            phases: traces.len(),
            total_iterations,
            phase_traces: traces,
            elapsed: Duration::from_secs_f64(watch.wall_seconds()),
        }
    }
}

impl Default for ParallelLouvain {
    fn default() -> Self {
        Self::new(GrappoloConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::community::modularity;
    use louvain_graph::gen::{lfr, ssca2, LfrParams, Ssca2Params};
    use louvain_graph::EdgeList;

    #[test]
    fn finds_planted_lfr_communities() {
        let gen = lfr(LfrParams::small(2_000, 11));
        let result = ParallelLouvain::default().run(&gen.graph);
        let q_truth = modularity(&gen.graph, gen.ground_truth.as_ref().unwrap());
        assert!(
            result.modularity > q_truth - 0.05,
            "found {} vs truth {}",
            result.modularity,
            q_truth
        );
        // Reported modularity must match recomputation on the flattened
        // assignment.
        let q_check = modularity(&gen.graph, &result.assignment);
        assert!((result.modularity - q_check).abs() < 1e-9);
    }

    #[test]
    fn ssca2_reaches_near_one() {
        let gen = ssca2(Ssca2Params {
            n: 3_000,
            max_clique_size: 30,
            inter_clique_prob: 0.02,
            seed: 5,
        });
        let result = ParallelLouvain::default().run(&gen.graph);
        assert!(result.modularity > 0.95, "q = {}", result.modularity);
    }

    #[test]
    fn assignment_is_dense() {
        let gen = lfr(LfrParams::small(1_000, 2));
        let result = ParallelLouvain::default().run(&gen.graph);
        let max = *result.assignment.iter().max().unwrap() as usize;
        assert_eq!(max + 1, result.num_communities);
    }

    #[test]
    fn multiple_phases_occur_on_structured_input() {
        let gen = lfr(LfrParams::small(2_000, 4));
        let result = ParallelLouvain::default().run(&gen.graph);
        assert!(result.phases >= 2, "phases = {}", result.phases);
        assert_eq!(result.phases, result.phase_traces.len());
        assert!(result.total_iterations >= result.phases);
    }

    #[test]
    fn vertex_following_preserves_quality() {
        let gen = lfr(LfrParams::small(1_500, 6));
        let base = ParallelLouvain::default().run(&gen.graph);
        let vf = ParallelLouvain::new(GrappoloConfig {
            vertex_following: true,
            ..Default::default()
        })
        .run(&gen.graph);
        assert!(vf.modularity > base.modularity - 0.05);
    }

    #[test]
    fn coloring_preserves_quality() {
        let gen = lfr(LfrParams::small(1_500, 8));
        let base = ParallelLouvain::default().run(&gen.graph);
        let col = ParallelLouvain::new(GrappoloConfig {
            coloring: true,
            ..Default::default()
        })
        .run(&gen.graph);
        assert!(col.modularity > base.modularity - 0.05);
    }

    #[test]
    fn single_community_graph_handled() {
        // A single triangle cannot be split.
        let g = louvain_graph::Csr::from_edge_list(EdgeList::from_edges(
            3,
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)],
        ));
        let result = ParallelLouvain::default().run(&g);
        assert_eq!(result.num_communities, 1);
        assert!(result.modularity.abs() < 1e-9);
    }

    #[test]
    fn et_runs_faster_in_iterations_with_similar_quality() {
        let gen = ssca2(Ssca2Params {
            n: 4_000,
            max_clique_size: 40,
            inter_clique_prob: 0.05,
            seed: 9,
        });
        let base = ParallelLouvain::default().run(&gen.graph);
        let et = ParallelLouvain::new(GrappoloConfig::with_et(1.0)).run(&gen.graph);
        assert!(et.modularity > base.modularity - 0.02);
    }
}
