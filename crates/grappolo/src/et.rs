//! Early-termination state (Eq. 3 of the IPDPS 2018 paper).
//!
//! Each vertex holds an activity probability `P_v`. After an iteration in
//! which the vertex did **not** change community, `P_v ← P_v · (1 − α)`;
//! if it moved, `P_v ← 1`. A vertex participates in an iteration with
//! probability `P_v`, and is permanently below the radar once
//! `P_v < 2%` (the paper's cutoff).
//!
//! Coin flips are deterministic functions of `(seed, phase, iteration,
//! vertex)` so results do not depend on thread scheduling.

use louvain_graph::hash::{coin_u01, mix64};

/// The paper labels a vertex inactive once its probability drops below 2%.
pub const INACTIVE_CUTOFF: f64 = 0.02;

/// Per-vertex activity probabilities for one phase.
///
/// Coins are keyed by `first_global + v`, so the same state machine
/// serves both the shared-memory runner (local ids, offset 0 via
/// [`EtState::new`]) and the distributed per-rank tracker (global ids
/// via [`EtState::with_offset`]): a vertex flips the same coin no matter
/// which rank hosts it.
#[derive(Debug, Clone)]
pub struct EtState {
    alpha: f64,
    seed: u64,
    first_global: u64,
    prob: Vec<f64>,
}

impl EtState {
    /// Fresh state with every vertex fully active, coins keyed by the
    /// plain vertex index (offset 0).
    pub fn new(n: usize, alpha: f64, seed: u64) -> Self {
        Self::with_offset(n, 0, alpha, seed)
    }

    /// Fresh state for `n` vertices whose global ids start at
    /// `first_global` — the distributed per-rank flavour.
    pub fn with_offset(n: usize, first_global: u64, alpha: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        Self {
            alpha,
            seed,
            first_global,
            prob: vec![1.0; n],
        }
    }

    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Decide whether vertex `v` is active in `(phase, iteration)`.
    #[inline]
    pub fn is_active(&self, phase: usize, iteration: usize, v: usize) -> bool {
        let p = self.prob[v];
        if p < INACTIVE_CUTOFF {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let g = self.first_global + v as u64;
        let h = mix64(self.seed ^ mix64((phase as u64) << 32 | iteration as u64) ^ mix64(g));
        coin_u01(h) < p
    }

    /// Update `v`'s probability after an iteration: `moved` says whether it
    /// changed community.
    #[inline]
    pub fn update(&mut self, v: usize, moved: bool) {
        if moved {
            self.prob[v] = 1.0;
        } else {
            self.prob[v] *= 1.0 - self.alpha;
        }
    }

    /// Number of vertices currently under the inactive cutoff.
    pub fn num_inactive(&self) -> usize {
        self.prob.iter().filter(|&&p| p < INACTIVE_CUTOFF).count()
    }

    /// Direct probability access (for tests and introspection).
    pub fn probability(&self, v: usize) -> f64 {
        self.prob[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_never_deactivates() {
        let mut et = EtState::new(4, 0.0, 1);
        for _ in 0..100 {
            et.update(0, false);
        }
        assert_eq!(et.probability(0), 1.0);
        assert!(et.is_active(0, 50, 0));
    }

    #[test]
    fn alpha_one_deactivates_after_one_stationary_iteration() {
        let mut et = EtState::new(2, 1.0, 1);
        et.update(0, false);
        assert_eq!(et.probability(0), 0.0);
        assert!(!et.is_active(0, 1, 0));
        // Vertex 1 moved, stays fully active.
        et.update(1, true);
        assert!(et.is_active(0, 1, 1));
    }

    #[test]
    fn probability_decays_geometrically() {
        let mut et = EtState::new(1, 0.5, 9);
        et.update(0, false);
        et.update(0, false);
        assert!((et.probability(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn moving_resets_probability() {
        let mut et = EtState::new(1, 0.75, 9);
        et.update(0, false);
        assert!(et.probability(0) < 1.0);
        et.update(0, true);
        assert_eq!(et.probability(0), 1.0);
    }

    #[test]
    fn inactive_count_tracks_cutoff() {
        let mut et = EtState::new(3, 0.9, 2);
        // Two stationary updates: P = 0.01 < 2% cutoff.
        for _ in 0..2 {
            et.update(0, false);
            et.update(1, false);
        }
        et.update(2, true);
        assert_eq!(et.num_inactive(), 2);
    }

    #[test]
    fn coin_flips_are_deterministic() {
        let mut et = EtState::new(1, 0.3, 42);
        et.update(0, false); // p = 0.7
        let a: Vec<bool> = (0..20).map(|it| et.is_active(0, it, 0)).collect();
        let b: Vec<bool> = (0..20).map(|it| et.is_active(0, it, 0)).collect();
        assert_eq!(a, b);
        // Probability 0.7: most iterations active, some not.
        assert!(a.iter().filter(|&&x| x).count() >= 10);
    }

    #[test]
    fn offset_keys_coins_by_global_id() {
        // The vertex with the same global id must flip the same coin no
        // matter which local index (rank) hosts it.
        let mut a = EtState::with_offset(10, 0, 0.5, 42);
        let mut b = EtState::with_offset(10, 5, 0.5, 42);
        a.update(7, false);
        b.update(2, false);
        for it in 0..30 {
            assert_eq!(a.is_active(0, it, 7), b.is_active(0, it, 2), "iter {it}");
        }
        // Offset 0 is exactly `new`.
        let mut plain = EtState::new(4, 0.25, 9);
        let mut zero = EtState::with_offset(4, 0, 0.25, 9);
        for v in 0..4 {
            plain.update(v, false);
            zero.update(v, false);
        }
        for it in 0..10 {
            for v in 0..4 {
                assert_eq!(plain.is_active(1, it, v), zero.is_active(1, it, v));
            }
        }
    }
}
