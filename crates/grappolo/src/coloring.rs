//! Greedy distance-1 coloring.
//!
//! Grappolo processes vertices color class by color class so that two
//! adjacent vertices never evaluate their moves concurrently — this
//! removes the "negative gain" races of fully relaxed parallel Louvain
//! and typically speeds up convergence. (The IPDPS paper lists distance-1
//! coloring as future work for the distributed code; here it serves the
//! shared-memory baseline.)

use louvain_graph::Csr;

/// Color classes of a greedy first-fit coloring. Returns
/// `(color_of_vertex, classes)` where `classes[c]` lists the vertices of
/// color `c` and no edge connects two vertices of the same color.
pub fn greedy_coloring(g: &Csr) -> (Vec<u32>, Vec<Vec<u32>>) {
    let n = g.num_vertices();
    let mut color = vec![u32::MAX; n];
    let mut forbidden: Vec<u32> = Vec::new();
    let mut max_color = 0u32;
    for v in 0..n {
        forbidden.clear();
        for (u, _) in g.neighbors(v as u64) {
            let cu = color[u as usize];
            if cu != u32::MAX {
                forbidden.push(cu);
            }
        }
        forbidden.sort_unstable();
        let mut c = 0u32;
        for &f in &forbidden {
            match f.cmp(&c) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => c += 1,
                std::cmp::Ordering::Greater => break,
            }
        }
        color[v] = c;
        max_color = max_color.max(c);
    }
    let mut classes: Vec<Vec<u32>> = vec![Vec::new(); max_color as usize + 1];
    for (v, &c) in color.iter().enumerate() {
        classes[c as usize].push(v as u32);
    }
    (color, classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use louvain_graph::gen::{erdos_renyi, ErdosRenyiParams};
    use louvain_graph::EdgeList;

    #[test]
    fn coloring_is_proper() {
        let g = erdos_renyi(ErdosRenyiParams {
            n: 500,
            avg_degree: 8.0,
            seed: 4,
        })
        .graph;
        let (color, _) = greedy_coloring(&g);
        for v in 0..g.num_vertices() as u64 {
            for (u, _) in g.neighbors(v) {
                if u != v {
                    assert_ne!(color[v as usize], color[u as usize], "edge {v}-{u}");
                }
            }
        }
    }

    #[test]
    fn classes_partition_vertices() {
        let g = erdos_renyi(ErdosRenyiParams {
            n: 300,
            avg_degree: 6.0,
            seed: 5,
        })
        .graph;
        let (_, classes) = greedy_coloring(&g);
        let total: usize = classes.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn path_graph_uses_two_colors() {
        let mut el = EdgeList::new(10);
        for v in 0..9 {
            el.push(v, v + 1, 1.0);
        }
        let g = Csr::from_edge_list(el);
        let (_, classes) = greedy_coloring(&g);
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn color_count_bounded_by_max_degree_plus_one() {
        let g = erdos_renyi(ErdosRenyiParams {
            n: 400,
            avg_degree: 10.0,
            seed: 6,
        })
        .graph;
        let max_deg = (0..g.num_vertices())
            .map(|v| g.degree(v as u64))
            .max()
            .unwrap();
        let (_, classes) = greedy_coloring(&g);
        assert!(classes.len() <= max_deg + 1);
    }
}
