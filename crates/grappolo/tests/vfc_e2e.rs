//! End-to-end VFC (vertex following + coloring) runs through the
//! shared-memory grappolo runner on the three bench-generator families
//! (SSCA2, LFR, RMAT) — the integration coverage that keeps the
//! coloring/VF entry points exercised beyond their unit tests.

use grappolo::{GrappoloConfig, ParallelLouvain};
use louvain_graph::community::modularity;
use louvain_graph::gen::{lfr, rmat, ssca2, LfrParams, RmatParams, Ssca2Params};
use louvain_graph::Csr;

fn bench_trio() -> Vec<(&'static str, Csr)> {
    vec![
        (
            "ssca2",
            ssca2(Ssca2Params {
                n: 1_000,
                max_clique_size: 20,
                inter_clique_prob: 0.05,
                seed: 9,
            })
            .graph,
        ),
        ("lfr", lfr(LfrParams::small(1_000, 7)).graph),
        ("rmat", rmat(RmatParams::social(10, 8, 5)).graph),
    ]
}

#[test]
fn vfc_runs_end_to_end_on_the_bench_trio() {
    for (name, g) in bench_trio() {
        let base = ParallelLouvain::new(GrappoloConfig::serial()).run(&g);
        let vfc = ParallelLouvain::new(GrappoloConfig::vfc(4)).run(&g);
        // The assignment is complete and the reported modularity is the
        // true modularity of the reported assignment.
        assert_eq!(vfc.assignment.len(), g.num_vertices(), "{name}");
        let q_ref = modularity(&g, &vfc.assignment);
        assert!(
            (vfc.modularity - q_ref).abs() < 1e-9,
            "{name}: reported {} vs recomputed {q_ref}",
            vfc.modularity
        );
        // Negligible quality loss vs the serial reference (Lu et al. §6).
        assert!(
            vfc.modularity > base.modularity - 0.05,
            "{name}: vfc {} vs serial {}",
            vfc.modularity,
            base.modularity
        );
        assert!(vfc.num_communities > 1, "{name}");
    }
}

#[test]
fn vfc_converges_in_no_more_phases_than_the_cap() {
    let g = lfr(LfrParams::small(800, 3)).graph;
    let out = ParallelLouvain::new(GrappoloConfig::vfc(2)).run(&g);
    assert!(out.phases <= GrappoloConfig::default().max_phases);
    assert!(out.total_iterations >= out.phases);
}
