#!/usr/bin/env bash
# Million-edge weak-scaling smoke for the out-of-core slab path.
#
# Exercises the full disk pipeline end to end at >=1M edges:
#   1. stream-generate a slab (bounded-memory external sort, no in-RAM
#      edge list) and the same graph as a binary edge list,
#   2. run p=2 three ways — in-memory scatter, mmap-backed slab, and
#      per-rank byte-range slab loads — and require bit-identical
#      community assignments,
#   3. run the bench_smoke weak-scaling sweep (measured p{1,2,8} rows +
#      modeled 64->4096-rank alpha-beta curves) and gate its
#      deterministic modeled rows against the committed BENCH_PR8.json.
#
# CI runs this behind the LOUVAIN_SCALE_GATE toggle; the fresh artifact lands
# at target/scale_artifact.json for upload.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace

SCRATCH=target/scale
mkdir -p "$SCRATCH"

# RMAT scale 18 (262144 vertices, ~1.9M edges after dedup), streamed
# straight to a slab and, separately, written as a binary edge list for
# the in-memory reference arm.
./target/release/louvain generate --kind rmat --n 262144 --seed 5 \
  --slab --out "$SCRATCH/rmat_s18.slab"
./target/release/louvain info "$SCRATCH/rmat_s18.slab"
./target/release/louvain generate --kind rmat --n 262144 --seed 5 \
  --out "$SCRATCH/rmat_s18.bin"

echo "==> p=2 bit-identity: in-memory scatter vs mmap vs byte-range"
./target/release/louvain run "$SCRATCH/rmat_s18.bin" -p 2 \
  --assignment "$SCRATCH/mem.comm" >/dev/null
./target/release/louvain run "$SCRATCH/rmat_s18.slab" --slab -p 2 \
  --assignment "$SCRATCH/mapped.comm" >/dev/null
./target/release/louvain run "$SCRATCH/rmat_s18.slab" --slab --ranged -p 2 \
  --assignment "$SCRATCH/ranged.comm" >/dev/null
cmp "$SCRATCH/mem.comm" "$SCRATCH/mapped.comm"
cmp "$SCRATCH/mem.comm" "$SCRATCH/ranged.comm"
echo "p=2 in-memory, mmap, and byte-range assignments are bit-identical"

echo "==> weak-scaling sweep + lens gate vs BENCH_PR8.json"
./target/release/bench_smoke --scale-out target/scale_artifact.json
./target/release/lens gate --baseline BENCH_PR8.json target/scale_artifact.json \
  --skip-label weak/
./target/release/lens show target/scale_artifact.json

echo "scale_smoke: OK"
