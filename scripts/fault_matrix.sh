#!/usr/bin/env bash
# Fault-matrix smoke: exercise the checkpoint/restart subsystem end to end
# through the CLI and assert that recovery is exact.
#
#   A. clean reference run (no faults, no checkpoints);
#   B. checkpointed run with an injected crash at phase 1 and a recovery
#      budget of 0 — must FAIL, leaving a complete checkpoint behind;
#   C. --resume from that checkpoint — must succeed and reproduce the
#      clean assignment and modularity bit-for-bit;
#   D. the same crash with the default recovery budget — must recover
#      automatically inside a single invocation, again bit-identically;
#   E. a transient-fault run (drops/delays/duplicates/truncations, no
#      crash) — the retry protocol must absorb every fault and still
#      reproduce the clean result.
#
# Everything runs on the simulated communicator: deterministic, offline,
# a few seconds total.
set -euo pipefail
cd "$(dirname "$0")/.."

RANKS="${RANKS:-2}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/louvain-fault-matrix.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

echo "==> build"
cargo build -q --release --bin louvain
BIN=target/release/louvain

echo "==> generate graph"
"$BIN" generate --kind lfr --n 900 --seed 11 --out "$WORK/g.graph"

run_q() { # <logfile> — extract the modularity line
  awk '/^modularity:/ {print $2}' "$1"
}

echo "==> A: clean reference run"
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" \
  --assignment "$WORK/clean.comm" | tee "$WORK/clean.log"

echo "==> B: crash at phase 1, recovery budget 0 (must fail)"
if "$BIN" run "$WORK/g.graph" --ranks "$RANKS" \
    --checkpoint-dir "$WORK/ckpt" \
    --fault-plan 'crash:rank=0,phase=1,op=0' \
    --max-recoveries 0 >"$WORK/crash.log" 2>&1; then
  echo "FAIL: crashed run exited 0" >&2
  exit 1
fi
test -f "$WORK/ckpt/LATEST" || { echo "FAIL: no checkpoint written" >&2; exit 1; }

echo "==> C: resume from the checkpoint"
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" \
  --checkpoint-dir "$WORK/ckpt" --resume \
  --assignment "$WORK/resumed.comm" | tee "$WORK/resumed.log"
grep -q '^resumed from phase' "$WORK/resumed.log" \
  || { echo "FAIL: resume did not restore a checkpoint" >&2; exit 1; }

echo "==> D: same crash, automatic in-run recovery"
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" \
  --checkpoint-dir "$WORK/ckpt2" \
  --fault-plan 'crash:rank=0,phase=1,op=0' \
  --assignment "$WORK/recovered.comm" | tee "$WORK/recovered.log"
grep -q '^recoveries:' "$WORK/recovered.log" \
  || { echo "FAIL: no recovery happened" >&2; exit 1; }

echo "==> E: transient faults (drop/delay/duplicate/truncate)"
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" \
  --fault-plan 'seed=7;drop:prob=0.05;truncate:prob=0.03;duplicate:prob=0.05;delay:prob=0.01' \
  --assignment "$WORK/noisy.comm" | tee "$WORK/noisy.log"
grep -q '^faults:' "$WORK/noisy.log" \
  || { echo "FAIL: fault plan injected nothing" >&2; exit 1; }

echo "==> parity checks"
for variant in resumed recovered noisy; do
  cmp -s "$WORK/clean.comm" "$WORK/$variant.comm" \
    || { echo "FAIL: $variant assignment differs from clean run" >&2; exit 1; }
  q_clean="$(run_q "$WORK/clean.log")"
  q_other="$(run_q "$WORK/$variant.log")"
  [ "$q_clean" = "$q_other" ] \
    || { echo "FAIL: $variant modularity $q_other != clean $q_clean" >&2; exit 1; }
done

echo "fault-matrix: OK (clean == resumed == recovered == noisy)"
