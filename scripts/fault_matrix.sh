#!/usr/bin/env bash
# Fault-matrix smoke: exercise the checkpoint/restart subsystem end to end
# through the CLI and assert that recovery is exact.
#
#   A. clean reference run (no faults, no checkpoints);
#   B. checkpointed run with an injected crash at phase 1 and a recovery
#      budget of 0 — must FAIL, leaving a complete checkpoint behind;
#   C. --resume from that checkpoint — must succeed and reproduce the
#      clean assignment and modularity bit-for-bit;
#   D. the same crash with the default recovery budget — must recover
#      automatically inside a single invocation, again bit-identically;
#   E. a transient-fault run (drops/delays/duplicates/truncations, no
#      crash) — the retry protocol must absorb every fault and still
#      reproduce the clean result;
#   F. a hang: a rank goes silent mid-phase, the rank-health watchdog
#      must declare it hung within the deadline ladder and recover from
#      the newest checkpoint, bit-identically;
#   G. a straggler: a rank stalls past the deadline but keeps
#      heartbeating — the watchdog must extend (no hang declaration, no
#      recovery) and the result must not change;
#   H. corrupt payloads + flaky bursts — checksums catch every corrupt
#      envelope, retransmission absorbs both, result unchanged.
#
# Everything runs on the simulated communicator: deterministic, offline,
# a few seconds total.
#
# Environment knobs:
#   RANKS=<P>         rank count (default 2)
#   EXTRA_FLAGS="..." extra `louvain run` flags appended to every run,
#                     e.g. "--threads-per-rank 4 --sweep colored" to
#                     exercise the matrix under the parallel sweep
#   ONLY_CLEAN=1      stop after scenario A (the clean reference run) —
#                     used by the CI threads=4 job as a fast smoke
set -euo pipefail
cd "$(dirname "$0")/.."

RANKS="${RANKS:-2}"
EXTRA_FLAGS="${EXTRA_FLAGS:-}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/louvain-fault-matrix.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

echo "==> build"
cargo build -q --release --bin louvain --bin lens
BIN=target/release/louvain
BIN2=target/release/lens

echo "==> generate graph"
"$BIN" generate --kind lfr --n 900 --seed 11 --out "$WORK/g.graph"

run_q() { # <logfile> — extract the modularity line
  awk '/^modularity:/ {print $2}' "$1"
}

echo "==> A: clean reference run"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
  --assignment "$WORK/clean.comm" | tee "$WORK/clean.log"

if [ "${ONLY_CLEAN:-0}" = "1" ]; then
  grep -q '^modularity:' "$WORK/clean.log" \
    || { echo "FAIL: clean run printed no modularity" >&2; exit 1; }
  echo "fault-matrix: OK (ONLY_CLEAN: scenario A only)"
  exit 0
fi

echo "==> B: crash at phase 1, recovery budget 0 (must fail)"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
if "$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
    --checkpoint-dir "$WORK/ckpt" \
    --fault-plan 'crash:rank=0,phase=1,op=0' \
    --max-recoveries 0 >"$WORK/crash.log" 2>&1; then
  echo "FAIL: crashed run exited 0" >&2
  exit 1
fi
test -f "$WORK/ckpt/LATEST" || { echo "FAIL: no checkpoint written" >&2; exit 1; }

echo "==> C: resume from the checkpoint"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
  --checkpoint-dir "$WORK/ckpt" --resume \
  --artifact-out "$WORK/resumed.artifact.json" \
  --assignment "$WORK/resumed.comm" | tee "$WORK/resumed.log"
grep -q '^resumed from phase' "$WORK/resumed.log" \
  || { echo "FAIL: resume did not restore a checkpoint" >&2; exit 1; }
# The run artifact must carry the resume provenance: a crash-resumed
# run is distinguishable from a clean one in the unified schema.
grep -q '"resumed_from_phase": [0-9]' "$WORK/resumed.artifact.json" \
  || { echo "FAIL: run artifact lost resumed_from_phase" >&2; exit 1; }
"$BIN2" show "$WORK/resumed.artifact.json" | grep -q 'resumed_from_phase=' \
  || { echo "FAIL: lens show does not surface the resume provenance" >&2; exit 1; }

echo "==> D: same crash, automatic in-run recovery"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
  --checkpoint-dir "$WORK/ckpt2" \
  --fault-plan 'crash:rank=0,phase=1,op=0' \
  --assignment "$WORK/recovered.comm" | tee "$WORK/recovered.log"
grep -q '^recoveries:' "$WORK/recovered.log" \
  || { echo "FAIL: no recovery happened" >&2; exit 1; }

echo "==> E: transient faults (drop/delay/duplicate/truncate)"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
  --fault-plan 'seed=7;drop:prob=0.05;truncate:prob=0.03;duplicate:prob=0.05;delay:prob=0.01' \
  --assignment "$WORK/noisy.comm" | tee "$WORK/noisy.log"
grep -q '^faults:' "$WORK/noisy.log" \
  || { echo "FAIL: fault plan injected nothing" >&2; exit 1; }

echo "==> F: hang at phase 1, watchdog declares + recovers from checkpoint"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
  --checkpoint-dir "$WORK/ckpt3" \
  --fault-plan 'hang:rank=1,phase=1,op=0' \
  --comm-timeout-ms 100 --max-retries 2 \
  --assignment "$WORK/hang.comm" | tee "$WORK/hang.log"
grep -q '^hung rank:' "$WORK/hang.log" \
  || { echo "FAIL: no hung-rank declaration" >&2; exit 1; }
grep -q '(0 crash, 1 hang)' "$WORK/hang.log" \
  || { echo "FAIL: hang not recovered as a hang" >&2; exit 1; }

echo "==> G: stall straggler — extended, not declared hung, blamed by crit"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
  --fault-plan 'seed=2;stall:rank=1,ms=150,prob=0.05' \
  --comm-timeout-ms 60 \
  --artifact-out "$WORK/stall.artifact.json" \
  --assignment "$WORK/stall.comm" | tee "$WORK/stall.log"
if grep -q '^recoveries:' "$WORK/stall.log"; then
  echo "FAIL: straggler was escalated to a recovery" >&2
  exit 1
fi
grep -Eq '^watchdog:.* [1-9][0-9]* straggler extensions' "$WORK/stall.log" \
  || { echo "FAIL: no straggler extension recorded" >&2; exit 1; }
# The causal profiler must pin the injected straggler: rank 1 is the
# one stalling, so the critical-path chain has to put the blame there.
"$BIN2" crit "$WORK/stall.artifact.json" | tee "$WORK/stall.crit.txt"
grep -q 'straggler blame: rank 1 ' "$WORK/stall.crit.txt" \
  || { echo "FAIL: lens crit did not blame the stalled rank 1" >&2; exit 1; }

echo "==> H: corrupt payloads + flaky bursts, absorbed by checksums/retries"
# shellcheck disable=SC2086  # EXTRA_FLAGS is a flag list
"$BIN" run "$WORK/g.graph" --ranks "$RANKS" $EXTRA_FLAGS \
  --fault-plan 'seed=12;corrupt-payload:prob=0.1;flaky-burst:prob=0.05,len=2' \
  --assignment "$WORK/corrupt.comm" | tee "$WORK/corrupt.log"
if grep -q '^recoveries:' "$WORK/corrupt.log"; then
  echo "FAIL: transient corruption consumed the recovery budget" >&2
  exit 1
fi
grep -Eq '^watchdog:.* [1-9][0-9]* checksum rejects' "$WORK/corrupt.log" \
  || { echo "FAIL: no corrupt envelope was checksum-rejected" >&2; exit 1; }

echo "==> parity checks"
for variant in resumed recovered noisy hang stall corrupt; do
  cmp -s "$WORK/clean.comm" "$WORK/$variant.comm" \
    || { echo "FAIL: $variant assignment differs from clean run" >&2; exit 1; }
  q_clean="$(run_q "$WORK/clean.log")"
  q_other="$(run_q "$WORK/$variant.log")"
  [ "$q_clean" = "$q_other" ] \
    || { echo "FAIL: $variant modularity $q_other != clean $q_clean" >&2; exit 1; }
done

echo "fault-matrix: OK (clean == resumed == recovered == noisy == hang == stall == corrupt)"
