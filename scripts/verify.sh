#!/usr/bin/env bash
# Tier-1 verification: build, test, format and lint the workspace.
#
# The vendor/ shims (rand, rayon, criterion, ...) are API stand-ins with
# intentionally minimal surfaces; they are built and tested as workspace
# members but excluded from the style gates.
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages (everything except vendor/ shims).
PACKAGES=(
  distributed-louvain
  louvain-obs
  louvain-comm
  louvain-graph
  louvain-resil
  louvain-dist
  grappolo
  louvain-bench
  louvain-lens
)

pkg_flags=()
for p in "${PACKAGES[@]}"; do
  pkg_flags+=(-p "$p")
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check (first-party crates)"
fmt_paths=(src crates/*/src tests)
fmt_files=()
while IFS= read -r f; do
  fmt_files+=("$f")
done < <(find "${fmt_paths[@]}" -name '*.rs' | sort)
rustfmt --edition 2021 --check "${fmt_files[@]}"

echo "==> cargo clippy -D warnings (first-party crates)"
cargo clippy -q "${pkg_flags[@]}" --all-targets -- -D warnings

# Perf/quality regression gate: regenerate the bench artifact and gate
# it against the committed baseline. Byte counters, modularity and
# iteration counts are deterministic and checked at the default
# tolerances; wall times are machine-local, so they get a generous
# relative tolerance and only catch order-of-magnitude blowups here.
# The fresh artifact lands at target/run_artifact.json for CI upload.
echo "==> bench run artifact + lens gate vs BENCH_PR5.json"
./target/release/bench_smoke \
  --out target/bench_scratch.json \
  --watchdog-out target/watchdog_scratch.json \
  --artifact-out target/run_artifact.json 2>/dev/null
./target/release/lens gate --baseline BENCH_PR5.json target/run_artifact.json \
  --wall-tol 9.0 --wall-floor 0.25

echo "verify: OK"
