#!/usr/bin/env bash
# Tier-1 verification: build, test, format and lint the workspace.
#
# The vendor/ shims (rand, rayon, criterion, ...) are API stand-ins with
# intentionally minimal surfaces; they are built and tested as workspace
# members but excluded from the style gates.
set -euo pipefail
cd "$(dirname "$0")/.."

# First-party packages (everything except vendor/ shims).
PACKAGES=(
  distributed-louvain
  louvain-obs
  louvain-comm
  louvain-graph
  louvain-resil
  louvain-dist
  grappolo
  louvain-bench
  louvain-lens
  louvain-serve
  louvain-store
)

pkg_flags=()
for p in "${PACKAGES[@]}"; do
  pkg_flags+=(-p "$p")
done

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo fmt --check (first-party crates)"
fmt_paths=(src crates/*/src tests)
fmt_files=()
while IFS= read -r f; do
  fmt_files+=("$f")
done < <(find "${fmt_paths[@]}" -name '*.rs' | sort)
rustfmt --edition 2021 --check "${fmt_files[@]}"

echo "==> cargo clippy -D warnings (first-party crates)"
cargo clippy -q "${pkg_flags[@]}" --all-targets -- -D warnings

# Perf/quality regression gate: regenerate the bench artifact and gate
# it against the committed baseline at the default lens tolerances.
# Byte counters, modularity, iteration counts and the modeled times are
# deterministic; bench_smoke itself asserts the colored-sweep wall win
# (>=1.5x modeled phase-1 sweep at t=4 vs t=1 on >=2 of 3 graphs per
# rank count) before the artifact is even written. The fresh artifact
# lands at target/run_artifact.json for CI upload.
echo "==> bench run artifact + lens gate vs BENCH_PR7.json"
./target/release/bench_smoke \
  --threads 1,2,4 \
  --out target/bench_scratch.json \
  --watchdog-out target/watchdog_scratch.json \
  --artifact-out target/run_artifact.json \
  --trace-out target/trace.json 2>/dev/null
./target/release/lens gate --baseline BENCH_PR7.json target/run_artifact.json

# Causal critical-path gate: reconstruct the cross-rank happens-before
# DAG from the fresh artifact's message edges, check byte-exact
# agreement between transfer sub-spans and the comm counters, the
# alpha-beta fit against the modeled-clock constants, and that the
# wait fraction has not regressed past the committed baseline's plus
# the tolerance. The report lands at target/crit_report.txt and the
# Perfetto trace at target/trace.json for CI upload.
echo "==> lens crit (critical path + wait-fraction gate vs BENCH_PR7.json)"
./target/release/lens crit target/run_artifact.json \
  --baseline BENCH_PR7.json | tee target/crit_report.txt

# Serving gate: run the in-process louvaind bench (fresh job, cache
# hit, crash-injected kill-and-resume, single-rank job — the bench
# errors out unless the cache hit and the checkpoint resume actually
# happened) and gate the per-job rows against the committed
# BENCH_PR9.json. Modularity/bytes/iterations are deterministic; job
# wall times are machine-local latencies, hence the wide --wall-tol.
# The summary row must render the job-latency percentiles in lens show.
echo "==> louvaind bench + lens gate vs BENCH_PR9.json"
./target/release/louvaind bench --out target/serve_artifact.json 2>/dev/null
./target/release/lens gate --baseline BENCH_PR9.json target/serve_artifact.json \
  --wall-tol 4.0
./target/release/lens show BENCH_PR9.json | grep -q "job latency" \
  || { echo "FAIL: BENCH_PR9.json has no job-latency row"; exit 1; }

# Million-edge weak-scaling gate over the out-of-core slab path: opt-in
# via LOUVAIN_SCALE_GATE=1 because it spends tens of seconds on >=1M-edge
# runs. Regenerates the weak-scaling artifact (which itself asserts the
# p=2 byte-range load bit-identical to the shared mapping) and gates
# the deterministic modeled 64->4096-rank rows against the committed
# BENCH_PR8.json; measured weak/ rows carry machine-local wall times
# and are excluded with --skip-label. The fresh artifact lands at
# target/scale_artifact.json for CI upload.
if [[ "${LOUVAIN_SCALE_GATE:-0}" == "1" ]]; then
  echo "==> weak-scaling artifact + lens gate vs BENCH_PR8.json (LOUVAIN_SCALE_GATE=1)"
  ./target/release/bench_smoke --scale-out target/scale_artifact.json
  ./target/release/lens gate --baseline BENCH_PR8.json target/scale_artifact.json \
    --skip-label weak/
else
  echo "==> weak-scaling gate skipped (set LOUVAIN_SCALE_GATE=1 to enable)"
fi

echo "verify: OK"
