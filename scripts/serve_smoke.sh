#!/usr/bin/env bash
# Serving smoke: exercise the louvaind daemon end to end over TCP.
#
#   A. start the daemon on an ephemeral port with a 1-job crash budget;
#   B. submit a clean job — must finish `done`;
#   C. resubmit the identical job — must be answered `"cached":true`
#      from the result cache without re-running;
#   D. submit a job with an injected mid-run crash — the per-job
#      recovery budget absorbs it and the run resumes from its
#      phase-boundary checkpoint (`resumed_from_phase` non-null), with
#      the daemon unharmed;
#   E. query the finished job's dendrogram;
#   F. SIGTERM the daemon — it must drain and exit cleanly (status 0).
#
# Everything runs on the simulated communicator: deterministic, offline,
# a few seconds total.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d "${TMPDIR:-/tmp}/louvain-serve-smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> build"
cargo build -q --release --bin louvain --bin louvaind
LOUVAIN=target/release/louvain
LOUVAIND=target/release/louvaind

echo "==> generate graph"
"$LOUVAIN" generate --kind lfr --n 900 --seed 11 --out "$WORK/g.graph"

echo "==> start daemon"
"$LOUVAIND" serve --listen 127.0.0.1:0 --workers 2 \
    --ckpt-root "$WORK/ckpt" >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^louvaind listening on //p' "$WORK/daemon.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORK/daemon.log"; echo "FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { cat "$WORK/daemon.log"; echo "FAIL: daemon never announced its address"; exit 1; }
echo "    listening on $ADDR"

echo "==> B. clean job"
"$LOUVAIND" submit --addr "$ADDR" --job-id clean --graph "$WORK/g.graph" \
    --ranks 2 | tee "$WORK/clean.out"
grep -q '"outcome":"done"' "$WORK/clean.out" || { echo "FAIL: clean job did not finish"; exit 1; }
grep -q '"cached":false' "$WORK/clean.out" || { echo "FAIL: first run cannot be cached"; exit 1; }

echo "==> C. identical resubmission (cache hit)"
"$LOUVAIND" submit --addr "$ADDR" --job-id clean-again --graph "$WORK/g.graph" \
    --ranks 2 | tee "$WORK/cached.out"
grep -q '"cached":true' "$WORK/cached.out" || { echo "FAIL: resubmission was not served from the cache"; exit 1; }

echo "==> D. crash-injected job (kill-and-resume inside its budget)"
"$LOUVAIND" submit --addr "$ADDR" --job-id crashy --graph "$WORK/g.graph" \
    --ranks 2 --variant et:0.25 --fault "crash:rank=0,phase=1,op=0" \
    --crash-budget 1 | tee "$WORK/crash.out"
grep -q '"outcome":"done"' "$WORK/crash.out" || { echo "FAIL: crash-injected job did not finish"; exit 1; }
grep -q '"crash_recoveries":1' "$WORK/crash.out" || { echo "FAIL: the injected crash was not recovered"; exit 1; }
grep -q '"resumed_from_phase":1' "$WORK/crash.out" || { echo "FAIL: recovery did not resume from the phase checkpoint"; exit 1; }

echo "==> E. query the dendrogram"
"$LOUVAIND" query --addr "$ADDR" --job-id crashy >"$WORK/query.out"
grep -q '"type":"hierarchy"' "$WORK/query.out" || { echo "FAIL: query returned no hierarchy"; exit 1; }
grep -q '"levels":\[\[' "$WORK/query.out" || { echo "FAIL: hierarchy has no levels"; exit 1; }

echo "==> F. SIGTERM drain"
kill -TERM "$DAEMON_PID"
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    cat "$WORK/daemon.log"
    echo "FAIL: daemon did not exit after SIGTERM"
    exit 1
fi
wait "$DAEMON_PID" && STATUS=0 || STATUS=$?
DAEMON_PID=""
[ "$STATUS" -eq 0 ] || { cat "$WORK/daemon.log"; echo "FAIL: daemon exited with status $STATUS"; exit 1; }
grep -q "louvaind drained, exiting" "$WORK/daemon.log" || { cat "$WORK/daemon.log"; echo "FAIL: daemon did not drain before exit"; exit 1; }

echo "serve smoke: OK (cache hit, kill-and-resume, clean SIGTERM drain)"
