#!/usr/bin/env bash
# Serving smoke: exercise the louvaind daemon end to end over TCP.
#
#   A. start the daemon on an ephemeral port with a 1-job crash budget;
#   B. submit a clean job — must finish `done`;
#   C. resubmit the identical job — must be answered `"cached":true`
#      from the result cache without re-running;
#   D. submit a job with an injected mid-run crash — the per-job
#      recovery budget absorbs it and the run resumes from its
#      phase-boundary checkpoint (`resumed_from_phase` non-null), with
#      the daemon unharmed;
#   E. query the finished job's dendrogram;
#   G. scrape Prometheus metrics mid-job — the daemon must report at
#      least one running job while one is in flight;
#   H. watch a job: per-(phase, iteration) progress lines stream until
#      the terminal result line;
#   I. lens top (live TCP + saved file) and lens tail over the event
#      log, with a kind filter;
#   J. on-demand flight dump, then kill -9 — the dump must be
#      well-formed and its last_seq must equal the event-log tail's
#      sequence number (the log is flushed per event);
#   K. fresh daemon, SIGTERM — it must drain, dump the flight recorder,
#      and exit cleanly (status 0).
#
# Everything runs on the simulated communicator: deterministic, offline,
# a few seconds total.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d "${TMPDIR:-/tmp}/louvain-serve-smoke.XXXXXX")"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "==> build"
cargo build -q --release --bin louvain --bin louvaind --bin lens
LOUVAIN=target/release/louvain
LOUVAIND=target/release/louvaind
LENS=target/release/lens

echo "==> generate graphs"
"$LOUVAIN" generate --kind lfr --n 900 --seed 11 --out "$WORK/g.graph"
# A bigger graph keeps a job in flight long enough to scrape mid-run.
"$LOUVAIN" generate --kind lfr --n 30000 --seed 13 --out "$WORK/big.graph"

echo "==> start daemon"
"$LOUVAIND" serve --listen 127.0.0.1:0 --workers 2 \
    --ckpt-root "$WORK/ckpt" \
    --event-log "$WORK/events.jsonl" \
    --flight-dir "$WORK/flight" >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^louvaind listening on //p' "$WORK/daemon.log" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORK/daemon.log"; echo "FAIL: daemon died on startup"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { cat "$WORK/daemon.log"; echo "FAIL: daemon never announced its address"; exit 1; }
echo "    listening on $ADDR"

echo "==> B. clean job"
"$LOUVAIND" submit --addr "$ADDR" --job-id clean --graph "$WORK/g.graph" \
    --ranks 2 | tee "$WORK/clean.out"
grep -q '"outcome":"done"' "$WORK/clean.out" || { echo "FAIL: clean job did not finish"; exit 1; }
grep -q '"cached":false' "$WORK/clean.out" || { echo "FAIL: first run cannot be cached"; exit 1; }

echo "==> C. identical resubmission (cache hit)"
"$LOUVAIND" submit --addr "$ADDR" --job-id clean-again --graph "$WORK/g.graph" \
    --ranks 2 | tee "$WORK/cached.out"
grep -q '"cached":true' "$WORK/cached.out" || { echo "FAIL: resubmission was not served from the cache"; exit 1; }

echo "==> D. crash-injected job (kill-and-resume inside its budget)"
"$LOUVAIND" submit --addr "$ADDR" --job-id crashy --graph "$WORK/g.graph" \
    --ranks 2 --variant et:0.25 --fault "crash:rank=0,phase=1,op=0" \
    --crash-budget 1 | tee "$WORK/crash.out"
grep -q '"outcome":"done"' "$WORK/crash.out" || { echo "FAIL: crash-injected job did not finish"; exit 1; }
grep -q '"crash_recoveries":1' "$WORK/crash.out" || { echo "FAIL: the injected crash was not recovered"; exit 1; }
grep -q '"resumed_from_phase":1' "$WORK/crash.out" || { echo "FAIL: recovery did not resume from the phase checkpoint"; exit 1; }

echo "==> E. query the dendrogram"
"$LOUVAIND" query --addr "$ADDR" --job-id crashy >"$WORK/query.out"
grep -q '"type":"hierarchy"' "$WORK/query.out" || { echo "FAIL: query returned no hierarchy"; exit 1; }
grep -q '"levels":\[\[' "$WORK/query.out" || { echo "FAIL: hierarchy has no levels"; exit 1; }

echo "==> G. mid-job metrics scrape"
"$LOUVAIND" submit --addr "$ADDR" --job-id long --graph "$WORK/big.graph" \
    --ranks 2 >"$WORK/long.out" 2>&1 &
SUBMIT_PID=$!
RUNNING=""
for _ in $(seq 1 100); do
    "$LOUVAIND" metrics --addr "$ADDR" >"$WORK/metrics.txt" 2>/dev/null || true
    if grep -Eq '^serve_jobs_running [1-9]' "$WORK/metrics.txt"; then RUNNING=1; break; fi
    kill -0 "$SUBMIT_PID" 2>/dev/null || break
    sleep 0.1
done
[ -n "$RUNNING" ] || { cat "$WORK/metrics.txt"; echo "FAIL: never saw a running job in the metrics"; exit 1; }
grep -q '^serve_queue_depth ' "$WORK/metrics.txt" || { echo "FAIL: exposition is missing the queue-depth gauge"; exit 1; }
grep -q '^# TYPE serve_jobs_accepted_total counter' "$WORK/metrics.txt" || { echo "FAIL: exposition is missing TYPE lines"; exit 1; }

echo "==> H. watch the in-flight job to completion"
"$LOUVAIND" watch --addr "$ADDR" --job-id long | tee "$WORK/watch.out" >/dev/null
grep -q '"type":"progress"' "$WORK/watch.out" || { cat "$WORK/watch.out"; echo "FAIL: watch streamed no progress rows"; exit 1; }
grep -q '"outcome":"done"' "$WORK/watch.out" || { cat "$WORK/watch.out"; echo "FAIL: watch did not close with the job's result"; exit 1; }
wait "$SUBMIT_PID" || { cat "$WORK/long.out"; echo "FAIL: background submission failed"; exit 1; }

echo "==> I. lens top and lens tail"
"$LENS" top "$ADDR" | tee "$WORK/top.out"
grep -q '^queue depth' "$WORK/top.out" || { echo "FAIL: lens top printed no dashboard"; exit 1; }
grep -q 'jobs: accepted' "$WORK/top.out" || { echo "FAIL: lens top printed no job counters"; exit 1; }
"$LENS" top "$WORK/metrics.txt" >/dev/null || { echo "FAIL: lens top cannot read saved exposition text"; exit 1; }
"$LENS" tail "$WORK/events.jsonl" >"$WORK/tail.out"
grep -q 'job_accepted' "$WORK/tail.out" || { cat "$WORK/tail.out"; echo "FAIL: lens tail shows no admissions"; exit 1; }
"$LENS" tail "$WORK/events.jsonl" --kind job_done | grep -q 'job_done' || { echo "FAIL: lens tail kind filter found no completions"; exit 1; }

echo "==> J. on-demand flight dump, then kill -9"
"$LOUVAIND" dump --addr "$ADDR" >"$WORK/dump.out"
cat "$WORK/dump.out"
FLIGHT="$(sed -n 's/.*"path":"\([^"]*\)".*/\1/p' "$WORK/dump.out")"
[ -n "$FLIGHT" ] && [ -f "$FLIGHT" ] || { echo "FAIL: dump verb returned no flight file"; exit 1; }
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
grep -q '"magic": "LVFR"' "$FLIGHT" || { echo "FAIL: flight dump has no magic"; exit 1; }
DUMP_SEQ="$(sed -n 's/.*"last_seq": \([0-9]*\).*/\1/p' "$FLIGHT" | head -1)"
LOG_SEQ="$(grep -o '"seq":[0-9]*' "$WORK/events.jsonl" | tail -1 | cut -d: -f2)"
[ -n "$DUMP_SEQ" ] && [ "$DUMP_SEQ" = "$LOG_SEQ" ] || {
    echo "FAIL: flight dump last_seq ($DUMP_SEQ) != event-log tail seq ($LOG_SEQ)"; exit 1; }
"$LENS" tail "$WORK/events.jsonl" | grep -q 'flight_dump' || { echo "FAIL: event log after kill -9 is unreadable or missing the dump event"; exit 1; }
echo "    flight dump and event log agree at seq $DUMP_SEQ"

echo "==> K. fresh daemon, SIGTERM drain"
"$LOUVAIND" serve --listen 127.0.0.1:0 --workers 2 \
    --ckpt-root "$WORK/ckpt2" \
    --flight-dir "$WORK/flight2" >"$WORK/daemon2.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    grep -q '^louvaind listening on ' "$WORK/daemon2.log" && break
    sleep 0.1
done
kill -TERM "$DAEMON_PID"
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$DAEMON_PID" 2>/dev/null; then
    cat "$WORK/daemon2.log"
    echo "FAIL: daemon did not exit after SIGTERM"
    exit 1
fi
wait "$DAEMON_PID" && STATUS=0 || STATUS=$?
DAEMON_PID=""
[ "$STATUS" -eq 0 ] || { cat "$WORK/daemon2.log"; echo "FAIL: daemon exited with status $STATUS"; exit 1; }
grep -q "louvaind drained, exiting" "$WORK/daemon2.log" || { cat "$WORK/daemon2.log"; echo "FAIL: daemon did not drain before exit"; exit 1; }
grep -q "flight recorder dumped to" "$WORK/daemon2.log" || { cat "$WORK/daemon2.log"; echo "FAIL: SIGTERM drain did not dump the flight recorder"; exit 1; }
ls "$WORK/flight2"/flight-*.json >/dev/null 2>&1 || { echo "FAIL: no flight dump on disk after SIGTERM"; exit 1; }

echo "serve smoke: OK (cache hit, kill-and-resume, mid-job scrape, watch stream, flight/event-log parity, clean SIGTERM drain)"
