//! # distributed-louvain
//!
//! Umbrella crate for the IPDPS 2018 "Distributed Louvain Algorithm for
//! Graph Community Detection" reproduction. It re-exports the public API of
//! the workspace crates so that examples and downstream users need a single
//! dependency:
//!
//! * [`comm`] — simulated MPI runtime (ranks as threads, collectives,
//!   traffic accounting, α-β cost model),
//! * [`graph`] — CSR graphs, partitioning, distributed graphs with ghosts,
//!   synthetic generators (LFR, SSCA#2, RMAT, …), modularity,
//! * [`grappolo`] — the shared-memory multithreaded Louvain baseline,
//! * [`dist`] — the distributed Louvain algorithm with threshold cycling
//!   and early-termination heuristics,
//! * [`obs`] — rank-aware tracing: spans, Chrome-trace/JSONL export,
//!   metrics, aggregated run reports,
//! * [`resil`] — checkpoint/restart: versioned per-rank phase-boundary
//!   checkpoints, atomic manifests, deterministic crash recovery,
//! * [`serve`] — the `louvaind` job server: admission-controlled worker
//!   pool, per-job recovery budgets, kill-and-resume serving, and a
//!   fingerprint-keyed result cache,
//! * [`store`] — out-of-core slab storage: checksummed on-disk CSR built
//!   by bounded-memory external sort, memory-mapped or per-rank
//!   byte-range loading (the paper's MPI-I/O pattern).
//!
//! ## Quickstart
//!
//! ```
//! use distributed_louvain::prelude::*;
//!
//! // Generate a small graph with planted communities …
//! let graph = lfr(LfrParams::small(2_000, 7)).graph;
//! // … and run distributed Louvain on 4 simulated ranks.
//! let outcome = run_distributed(&graph, 4, &DistConfig::baseline());
//! assert!(outcome.modularity > 0.5);
//! ```

pub use grappolo;
pub use louvain_comm as comm;
pub use louvain_dist as dist;
pub use louvain_graph as graph;
pub use louvain_obs as obs;
pub use louvain_resil as resil;
pub use louvain_serve as serve;
pub use louvain_store as store;

/// Convenience re-exports for examples and quick experiments.
pub mod prelude {
    pub use crate::comm::{run as run_ranks, CostModel, ReduceOp, RunConfig};
    pub use crate::dist::{
        adjusted_rand_index, f_score, nmi, run_distributed, run_distributed_partitioned,
        run_distributed_resilient, run_distributed_with, CheckpointOptions, DistConfig,
        DistOutcome, PartitionStrategy, ResilOptions, Variant,
    };
    pub use crate::graph::gen::{
        banded, barabasi_albert, erdos_renyi, grid3d, lfr, rmat, ssca2, watts_strogatz, weblike,
        BandedParams, BarabasiAlbertParams, ErdosRenyiParams, Grid3dParams, LfrParams, RmatParams,
        Ssca2Params, WattsStrogatzParams, WeblikeParams,
    };
    pub use crate::graph::metrics::{clustering_coefficient, partition_metrics};
    pub use crate::graph::{Csr, EdgeList, VertexId};
    pub use crate::grappolo::{GrappoloConfig, ParallelLouvain};
}
