//! `lens` — run-artifact analytics for the distributed Louvain repo.
//!
//! ```text
//! lens show BENCH_PR5.json
//! lens diff artifacts/bench_pr1.json BENCH_PR5.json
//! lens gate --baseline BENCH_PR5.json fresh.json --wall-tol 4.0
//! lens convert BENCH_PR1.json --out artifacts/bench_pr1.json
//! ```
//!
//! Every input goes through [`RunArtifact::from_any_json_str`], so the
//! legacy bench shapes (`BENCH_PR1/3/4.json`, `RUNREPORT_PR2.json`) and
//! bare RunReports are accepted everywhere an artifact is.

use std::path::Path;
use std::process::ExitCode;

use distributed_louvain::obs::RunArtifact;
use louvain_lens::{crit, diff, gate_with_skips, show, Thresholds, DEFAULT_WAIT_TOL};

const USAGE: &str = "\
lens — run-artifact analytics (convergence tables, diffs, CI gate)

USAGE:
  lens show <ARTIFACT>
      Human summary: one block per run; traced runs get a sparkline
      convergence table (modularity, delta-Q, moves, active fraction,
      community count, ghost bytes per iteration). Runs carrying the
      mem.* gauges also get a memory line: heap CSR bytes, mmap-resident
      bytes, bytes-per-edge, and peak RSS.

  lens diff <BASELINE> <CURRENT> [threshold flags]
      Match runs by label and print wall / bytes / modularity /
      iterations deltas. Deterministic: same inputs, byte-identical
      output. Threshold crossings are marked REGRESSION but do not
      affect the exit code.

  lens gate --baseline <BASELINE> <CURRENT> [--skip-label <PREFIX>]...
            [threshold flags]
      CI verdict: exit 0 when every baseline run matches within
      thresholds, nonzero on any regression or on a baseline run
      missing from <CURRENT>. Runs only in <CURRENT> are allowed.
      --skip-label (repeatable) excludes runs whose label starts with
      PREFIX from the verdict — for informational rows (e.g. the
      machine-dependent weak-scaling sweeps) that should stay in the
      artifact without gating CI.

  lens crit <ARTIFACT> [--baseline <BASELINE>] [--wait-tol <F>]
      Cross-rank critical-path analysis over the causal profiling
      sections (phase profiles + Lamport-matched message edges):
      per-phase compute/transfer/wait/rebuild attribution along the
      critical path, slowest-rank chains with straggler blame, an
      alpha-beta model fit against the traced edges, and byte
      reconciliation with the p2p counters. With --baseline, exits
      nonzero when a run's blocked-wait fraction exceeds the
      baseline's by more than --wait-tol (absolute slack, 0.25).
      Errors (nonzero exit) on artifacts with no message events.

  lens top <ADDR|FILE> [--watch <SECS>]
      One-screen ops dashboard over a live daemon's metrics: queue
      depth, running jobs, admission/cache counters, and the
      job-latency percentiles. <ADDR> (host:port) fetches over the
      daemon's JSON-lines port; <FILE> reads saved Prometheus text.
      --watch refreshes every SECS seconds until interrupted.

  lens tail <EVENT-LOG> [--kind <KIND>] [--job <ID>]
      Pretty-print a daemon's JSONL event log (--event-log), one
      aligned line per event, filterable by snake_case event kind
      (job_accepted, job_shed, phase_completed, drain_begin, ...) and
      by job id. A torn final line (kill -9 mid-write) is tolerated.

  lens convert <IN> --out <OUT>
      Normalize any accepted input (legacy BENCH_PR*.json,
      RUNREPORT_PR2.json, bare RunReport, or an artifact) into the
      versioned RunArtifact schema.

Threshold flags (defaults in parentheses):
  --wall-tol <F>     relative wall-time growth allowed (0.75 = 1.75x)
  --wall-floor <F>   absolute wall growth in seconds below which wall
                     deltas are never flagged (0.005)
  --bytes-tol <F>    relative total-byte growth allowed (0.10)
  --mod-drop <F>     absolute modularity drop allowed (0.01)
  --iters-tol <F>    relative iterations-to-converge growth allowed,
                     plus 2 iterations of fixed slack (0.50)

Inputs may be any shape `RunArtifact::from_any_json_str` accepts.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("show") => run(cmd_show(&args[1..])),
        Some("diff") => run(cmd_diff(&args[1..])),
        Some("gate") => match cmd_gate(&args[1..]) {
            Ok(passed) => {
                if passed {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(msg) => fail(&msg),
        },
        Some("crit") => match cmd_crit(&args[1..]) {
            Ok(passed) => {
                if passed {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(msg) => fail(&msg),
        },
        Some("top") => run(cmd_top(&args[1..])),
        Some("tail") => run(cmd_tail(&args[1..])),
        Some("convert") => run(cmd_convert(&args[1..])),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn run(r: Result<(), String>) -> ExitCode {
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<RunArtifact, String> {
    let text = std::fs::read_to_string(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    RunArtifact::from_any_json_str(&text).map_err(|e| format!("{path}: {e}"))
}

/// Positional (non-flag) arguments; every flag here takes a value.
fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Every value of a repeatable flag, in order of appearance.
fn flag_multi(args: &[String], key: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == key {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn thresholds(args: &[String]) -> Result<Thresholds, String> {
    let mut t = Thresholds::default();
    let set = |key: &str, dst: &mut f64| -> Result<(), String> {
        if let Some(v) = flag(args, key) {
            *dst = v.parse().map_err(|_| format!("bad value for {key}: {v}"))?;
        }
        Ok(())
    };
    set("--wall-tol", &mut t.wall_tol)?;
    set("--wall-floor", &mut t.wall_floor_seconds)?;
    set("--bytes-tol", &mut t.bytes_tol)?;
    set("--mod-drop", &mut t.modularity_drop)?;
    set("--iters-tol", &mut t.iters_tol)?;
    Ok(t)
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let [path] = positionals(args)[..] else {
        return Err("usage: lens show <ARTIFACT>".into());
    };
    print!("{}", show(&load(path)?));
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let [a, b] = positionals(args)[..] else {
        return Err("usage: lens diff <BASELINE> <CURRENT>".into());
    };
    let t = thresholds(args)?;
    print!("{}", diff(&load(a)?, &load(b)?, &t).render());
    Ok(())
}

fn cmd_gate(args: &[String]) -> Result<bool, String> {
    let baseline =
        flag(args, "--baseline").ok_or("usage: lens gate --baseline <BASELINE> <CURRENT>")?;
    let [current] = positionals(args)[..] else {
        return Err("usage: lens gate --baseline <BASELINE> <CURRENT>".into());
    };
    let t = thresholds(args)?;
    let skips = flag_multi(args, "--skip-label");
    let skip_refs: Vec<&str> = skips.iter().map(String::as_str).collect();
    let result = gate_with_skips(&load(&baseline)?, &load(current)?, &t, &skip_refs);
    print!("{}", result.render());
    Ok(result.passed())
}

fn cmd_crit(args: &[String]) -> Result<bool, String> {
    let [path] = positionals(args)[..] else {
        return Err("usage: lens crit <ARTIFACT> [--baseline <BASELINE>] [--wait-tol <F>]".into());
    };
    let baseline = match flag(args, "--baseline") {
        Some(b) => Some(load(&b)?),
        None => None,
    };
    let wait_tol = match flag(args, "--wait-tol") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for --wait-tol: {v}"))?,
        None => DEFAULT_WAIT_TOL,
    };
    let report = crit(&load(path)?, baseline.as_ref(), wait_tol)?;
    print!("{}", report.render());
    Ok(report.passed())
}

/// Fetch Prometheus exposition text from `source`: an existing file is
/// read; anything else must look like host:port and is queried over the
/// daemon's JSON-lines port with a `metrics-text` request.
fn fetch_metrics_text(source: &str) -> Result<String, String> {
    if Path::new(source).exists() {
        return std::fs::read_to_string(source).map_err(|e| format!("{source}: {e}"));
    }
    if !source.contains(':') {
        return Err(format!("{source}: not a file, and not a host:port address"));
    }
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut stream = std::net::TcpStream::connect(source).map_err(|e| format!("{source}: {e}"))?;
    writeln!(stream, "{{\"type\":\"metrics-text\"}}").map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| e.to_string())?;
    let doc = distributed_louvain::obs::Json::parse(line.trim())
        .map_err(|e| format!("bad response line: {e:?}"))?;
    use distributed_louvain::obs::Json;
    match doc.get("type").and_then(Json::as_str) {
        Some("metrics_text") => doc
            .get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| "metrics_text response has no `text`".into()),
        Some("error") => Err(doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("daemon returned an error")
            .to_string()),
        _ => Err(format!("unexpected response: {}", line.trim())),
    }
}

fn cmd_top(args: &[String]) -> Result<(), String> {
    let [source] = positionals(args)[..] else {
        return Err("usage: lens top <ADDR|FILE> [--watch <SECS>]".into());
    };
    let watch_secs: Option<u64> = match flag(args, "--watch") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("bad value for --watch: {v}"))?,
        ),
        None => None,
    };
    loop {
        let text = fetch_metrics_text(source)?;
        let metrics = distributed_louvain::obs::parse_prometheus_text(&text)?;
        print!("{}", louvain_lens::render_top(&metrics));
        let Some(secs) = watch_secs else {
            return Ok(());
        };
        println!("---");
        std::thread::sleep(std::time::Duration::from_secs(secs.max(1)));
    }
}

fn cmd_tail(args: &[String]) -> Result<(), String> {
    let [path] = positionals(args)[..] else {
        return Err("usage: lens tail <EVENT-LOG> [--kind <KIND>] [--job <ID>]".into());
    };
    let kind = flag(args, "--kind");
    if let Some(k) = &kind {
        if distributed_louvain::obs::OpKind::parse(k).is_none() {
            return Err(format!("unknown event kind `{k}`"));
        }
    }
    let job = flag(args, "--job");
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events = louvain_lens::parse_event_log(&text).map_err(|e| format!("{path}: {e}"))?;
    print!(
        "{}",
        louvain_lens::render_tail(&events, kind.as_deref(), job.as_deref())
    );
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let [input] = positionals(args)[..] else {
        return Err("usage: lens convert <IN> --out <OUT>".into());
    };
    let out = flag(args, "--out").ok_or("missing required option --out")?;
    let artifact = load(input)?;
    std::fs::write(&out, artifact.to_json_string()).map_err(|e| format!("{out}: {e}"))?;
    println!("converted {input} -> {out} ({} runs)", artifact.runs.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_skip_flag_values() {
        let args = s(&["--baseline", "b.json", "cur.json", "--wall-tol", "4.0"]);
        assert_eq!(positionals(&args), vec!["cur.json"]);
    }

    #[test]
    fn flag_multi_collects_repeated_values() {
        let args = s(&["--skip-label", "weak/", "x.json", "--skip-label", "model/"]);
        assert_eq!(flag_multi(&args, "--skip-label"), vec!["weak/", "model/"]);
        assert!(flag_multi(&args, "--other").is_empty());
        // Trailing flag with no value must not panic or loop.
        assert!(flag_multi(&s(&["--skip-label"]), "--skip-label").is_empty());
    }

    #[test]
    fn threshold_flags_override_defaults() {
        let t = thresholds(&s(&["--wall-tol", "4.0", "--mod-drop", "0.002"])).unwrap();
        assert_eq!(t.wall_tol, 4.0);
        assert_eq!(t.modularity_drop, 0.002);
        assert_eq!(t.bytes_tol, Thresholds::default().bytes_tol);
        assert!(thresholds(&s(&["--bytes-tol", "abc"])).is_err());
    }

    #[test]
    fn convert_show_diff_gate_on_real_artifacts() {
        // End-to-end over a committed legacy bench file: convert it,
        // then show/diff/gate the converted artifact against itself.
        let src = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_PR1.json");
        let dir = std::env::temp_dir().join("louvain-lens-cli");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("pr1.artifact.json");
        cmd_convert(&s(&[src, "--out", out.to_str().unwrap()])).unwrap();
        let converted = load(out.to_str().unwrap()).unwrap();
        assert!(!converted.runs.is_empty());

        cmd_show(&s(&[out.to_str().unwrap()])).unwrap();
        cmd_diff(&s(&[out.to_str().unwrap(), out.to_str().unwrap()])).unwrap();
        assert!(
            cmd_gate(&s(&[
                "--baseline",
                out.to_str().unwrap(),
                out.to_str().unwrap()
            ]))
            .unwrap(),
            "an artifact must gate cleanly against itself"
        );
    }
}
