//! `louvaind` — the fault-tolerant Louvain job server.
//!
//! ```text
//! louvaind serve --listen 127.0.0.1:7077 --workers 2
//! louvaind submit --addr 127.0.0.1:7077 --job-id a --graph g.bin --ranks 2
//! louvaind query --addr 127.0.0.1:7077 --job-id a
//! louvaind bench --out target/serve_artifact.json
//! ```
//!
//! `serve` speaks the JSON-lines protocol of `louvain_serve::proto` over
//! stdin (the default: one session on the pipe) or TCP (`--listen`,
//! accepting any number of concurrent sessions). SIGTERM/SIGINT drain
//! in-flight jobs to a phase-boundary checkpoint before exit, so a
//! killed daemon's jobs resume from their newest manifest when
//! resubmitted — never from scratch.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use distributed_louvain::graph::{binio, gen};
use distributed_louvain::obs::{Json, RunArtifact, RunEntry, RunReport};
use distributed_louvain::serve::{serve_lines, JobSpec, JobStatus, ServeConfig, Server};

const USAGE: &str = "\
louvaind — fault-tolerant job server for distributed Louvain

USAGE:
  louvaind serve [--listen <HOST:PORT>] [--workers <N>] [--queue-depth <N>]
                 [--cache <N>] [--ckpt-root <DIR>] [--quarantine-after <N>]
                 [--crash-budget <N>] [--hang-budget <N>] [--verbose]
                 [--event-log <FILE>] [--event-log-max-bytes <N>]
                 [--flight-dir <DIR>] [--flight-events <N>]
      Run the daemon. Without --listen it serves one JSON-lines session
      on stdin/stdout; with --listen it accepts TCP sessions (port 0
      picks a free port; the bound address is printed on startup).
      SIGTERM/SIGINT drain in-flight jobs to a phase-boundary
      checkpoint, dump the flight recorder, then exit cleanly.
      --event-log appends every operational event as one JSON line
      (rotated at --event-log-max-bytes, default 1 MiB); a panic also
      dumps the flight recorder (last --flight-events events plus a
      metrics snapshot) into --flight-dir before the process dies.

  louvaind submit --addr <HOST:PORT> --job-id <ID> --graph <FILE>
                  [--ranks <N>] [--variant <V>] [--threads <N>]
                  [--sweep auto|colored|relaxed] [--seed <S>]
                  [--max-phases <N>] [--fault <PLAN>]
                  [--crash-budget <N>] [--hang-budget <N>]
      Submit one job over TCP and print every response line until the
      job is terminal (accepted, then result).

  louvaind query --addr <HOST:PORT> --job-id <ID>
      Fetch a finished job's dendrogram (per-level assignments).

  louvaind watch --addr <HOST:PORT> --job-id <ID>
      Stream the job's per-(phase, iteration) progress lines — replayed
      history first, then live — until its terminal result line.

  louvaind metrics --addr <HOST:PORT>
      Print the daemon's live metrics as Prometheus exposition text
      (the same text `GET /metrics` on the daemon port returns).

  louvaind dump --addr <HOST:PORT>
      Ask the daemon to dump its flight recorder to disk now; prints
      the dump's path.

  louvaind bench --out <FILE>
      In-process serving benchmark: a 2-worker pool runs a fresh job, a
      cache-hit repeat, a crash-injected kill-and-resume job, and a
      single-rank job; asserts the cache hit and the resume actually
      happened and writes a run artifact whose summary row carries the
      serve.* metrics (p50/p95/p99 job latency included).

The wire protocol is one JSON object per line; see DESIGN.md §14.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_usize(args: &[String], key: &str) -> Result<Option<usize>, String> {
    match flag(args, key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {key}: {v}")),
    }
}

fn has_flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

// ---------------------------------------------------------------------------
// Signals: typed declaration (no libc crate in the build environment).
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    type SigHandler = extern "C" fn(i32);
    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> isize;
    }

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Install SIGTERM (15) and SIGINT (2) handlers that set a flag the
    /// serve loops poll; the drain itself runs on a normal thread.
    pub fn install() {
        unsafe {
            signal(15, on_term);
            signal(2, on_term);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn termed() -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

fn serve_config(args: &[String]) -> Result<ServeConfig, String> {
    let mut cfg = ServeConfig {
        verbose: has_flag(args, "--verbose"),
        ..ServeConfig::default()
    };
    if let Some(v) = flag_usize(args, "--workers")? {
        cfg.workers = v;
    }
    if let Some(v) = flag_usize(args, "--queue-depth")? {
        cfg.queue_depth = v;
    }
    if let Some(v) = flag_usize(args, "--cache")? {
        cfg.cache_capacity = v;
    }
    if let Some(v) = flag_usize(args, "--quarantine-after")? {
        cfg.quarantine_after = v;
    }
    if let Some(v) = flag_usize(args, "--crash-budget")? {
        cfg.max_crash_recoveries = v;
    }
    if let Some(v) = flag_usize(args, "--hang-budget")? {
        cfg.max_hang_recoveries = v;
    }
    if let Some(dir) = flag(args, "--ckpt-root") {
        cfg.checkpoint_root = PathBuf::from(dir);
    }
    if let Some(path) = flag(args, "--event-log") {
        cfg.event_log = Some(PathBuf::from(path));
    }
    if let Some(v) = flag_usize(args, "--event-log-max-bytes")? {
        cfg.event_log_max_bytes = v as u64;
    }
    if let Some(dir) = flag(args, "--flight-dir") {
        cfg.flight_dir = Some(PathBuf::from(dir));
    }
    if let Some(v) = flag_usize(args, "--flight-events")? {
        cfg.flight_capacity = v;
    }
    Ok(cfg)
}

/// Dump the flight recorder, logging where it landed (or why not).
fn dump_flight(server: &Server, reason: &str) {
    match server.dump_flight(reason) {
        Ok(path) => eprintln!("louvaind: flight recorder dumped to {}", path.display()),
        Err(e) => eprintln!("louvaind: flight dump failed: {e}"),
    }
}

/// Chain a panic hook that dumps the flight recorder before the default
/// hook prints the panic. Worker panics are caught and mapped to job
/// failures, so reaching this hook means the daemon itself is dying —
/// the dump is the post-mortem: the last N operational events plus a
/// metrics snapshot, written atomically so a half-dead process cannot
/// leave a torn file.
fn install_flight_panic_hook(server: &Server) {
    let server = server.clone();
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        dump_flight(&server, "panic");
        previous(info);
    }));
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    sig::install();
    let cfg = serve_config(args)?;
    let server = Server::start(cfg);
    install_flight_panic_hook(&server);
    match flag(args, "--listen") {
        Some(addr) => serve_tcp(&server, &addr),
        None => serve_stdin(&server),
    }
}

/// One JSON-lines session on the stdin/stdout pipe. The reader thread
/// blocks on stdin; the main thread polls the TERM flag so a signal
/// drains and exits even while the pipe is idle.
fn serve_stdin(server: &Server) -> Result<(), String> {
    let writer = Arc::new(Mutex::new(std::io::stdout()));
    let done = Arc::new(AtomicBool::new(false));
    let session = {
        let server = server.clone();
        let writer = writer.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let shutdown = serve_lines(&server, std::io::stdin().lock(), writer);
            done.store(true, Ordering::SeqCst);
            shutdown
        })
    };
    loop {
        if done.load(Ordering::SeqCst) {
            // Session ended: a `shutdown` request already drained; a
            // plain EOF has not.
            let shutdown = session.join().unwrap_or(false);
            if !shutdown {
                server.drain();
            }
            return Ok(());
        }
        if sig::termed() {
            eprintln!("louvaind: signal received, draining");
            server.drain();
            // The drain events are in the ring before the dump, so the
            // post-mortem shows what was shed on the way out.
            dump_flight(server, "sigterm");
            // The session thread may still be blocked on stdin; the
            // process exits regardless — all jobs are checkpointed.
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// TCP listener: nonblocking accept loop polling the TERM flag, one
/// session thread per connection. Any session's `shutdown` request
/// drains the pool and stops the listener.
fn serve_tcp(server: &Server, addr: &str) -> Result<(), String> {
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!("louvaind listening on {local}");
    std::io::stdout().flush().ok();
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut sessions = Vec::new();
    loop {
        if sig::termed() || shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let server = server.clone();
                let shutdown = shutdown.clone();
                sessions.push(std::thread::spawn(move || {
                    let Ok(read_half) = stream.try_clone() else {
                        return;
                    };
                    stream.set_nonblocking(false).ok();
                    read_half.set_nonblocking(false).ok();
                    let writer = Arc::new(Mutex::new(stream));
                    if serve_lines(&server, BufReader::new(read_half), writer) {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    let termed = sig::termed();
    if termed {
        eprintln!("louvaind: signal received, draining");
    }
    server.drain();
    if termed {
        dump_flight(server, "sigterm");
    }
    for s in sessions {
        let _ = s.join();
    }
    println!("louvaind drained, exiting");
    Ok(())
}

// ---------------------------------------------------------------------------
// submit / query (TCP clients)
// ---------------------------------------------------------------------------

fn connect(args: &[String]) -> Result<TcpStream, String> {
    let addr = flag(args, "--addr").ok_or("missing required option --addr")?;
    TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let job_id = flag(args, "--job-id").ok_or("missing required option --job-id")?;
    let graph = flag(args, "--graph").ok_or("missing required option --graph")?;
    let graph = std::fs::canonicalize(&graph)
        .map_err(|e| format!("{graph}: {e}"))?
        .to_string_lossy()
        .into_owned();

    let mut config: Vec<(String, Json)> = Vec::new();
    if let Some(v) = flag(args, "--variant") {
        config.push(("variant".into(), Json::str(v)));
    }
    if let Some(v) = flag(args, "--sweep") {
        config.push(("sweep".into(), Json::str(v)));
    }
    if let Some(v) = flag_usize(args, "--threads")? {
        config.push(("threads_per_rank".into(), Json::Num(v as f64)));
    }
    if let Some(v) = flag_usize(args, "--seed")? {
        config.push(("seed".into(), Json::Num(v as f64)));
    }
    if let Some(v) = flag_usize(args, "--max-phases")? {
        config.push(("max_phases".into(), Json::Num(v as f64)));
    }

    let mut req: Vec<(String, Json)> = vec![
        ("type".into(), Json::str("submit")),
        ("job_id".into(), Json::str(job_id.clone())),
        ("graph".into(), Json::str(graph)),
    ];
    if let Some(v) = flag_usize(args, "--ranks")? {
        req.push(("ranks".into(), Json::Num(v as f64)));
    }
    if !config.is_empty() {
        req.push(("config".into(), Json::Obj(config)));
    }
    if let Some(plan) = flag(args, "--fault") {
        req.push(("fault_plan".into(), Json::str(plan)));
    }
    if let Some(v) = flag_usize(args, "--crash-budget")? {
        req.push(("max_crash_recoveries".into(), Json::Num(v as f64)));
    }
    if let Some(v) = flag_usize(args, "--hang-budget")? {
        req.push(("max_hang_recoveries".into(), Json::Num(v as f64)));
    }

    let stream = connect(args)?;
    talk(stream, &Json::Obj(req), |line| {
        // Stop once the submission is terminal: a result for our job,
        // a rejection, or a protocol error.
        matches!(
            line.get("type").and_then(Json::as_str),
            Some("result" | "rejected" | "error")
        )
    })
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let job_id = flag(args, "--job-id").ok_or("missing required option --job-id")?;
    let req = Json::Obj(vec![
        ("type".into(), Json::str("query")),
        ("job_id".into(), Json::str(job_id)),
    ]);
    let stream = connect(args)?;
    talk(stream, &req, |_| true)
}

fn cmd_watch(args: &[String]) -> Result<(), String> {
    let job_id = flag(args, "--job-id").ok_or("missing required option --job-id")?;
    let req = Json::Obj(vec![
        ("type".into(), Json::str("watch")),
        ("job_id".into(), Json::str(job_id)),
    ]);
    let stream = connect(args)?;
    talk(stream, &req, |line| {
        // The stream closes with the job's terminal result line (or an
        // error for an unknown job).
        matches!(
            line.get("type").and_then(Json::as_str),
            Some("result" | "error")
        )
    })
}

/// Fetch the daemon's live metrics and print them as Prometheus text —
/// the decoded `text` field, not the JSON envelope, so the output pipes
/// straight into promtool or a file.
fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let mut stream = connect(args)?;
    let req = Json::Obj(vec![("type".into(), Json::str("metrics-text"))]);
    writeln!(stream, "{}", req.to_string_compact()).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let doc = Json::parse(line.trim()).map_err(|e| format!("bad response line: {e}"))?;
    match doc.get("type").and_then(Json::as_str) {
        Some("metrics_text") => {
            let text = doc
                .get("text")
                .and_then(Json::as_str)
                .ok_or("metrics_text response has no `text`")?;
            print!("{text}");
            Ok(())
        }
        Some("error") => Err(doc
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("daemon returned an error")
            .to_string()),
        _ => Err(format!("unexpected response: {}", line.trim())),
    }
}

fn cmd_dump(args: &[String]) -> Result<(), String> {
    let stream = connect(args)?;
    let req = Json::Obj(vec![("type".into(), Json::str("dump"))]);
    talk(stream, &req, |_| true)
}

/// Send one request line, print response lines until `done` says stop.
fn talk(mut stream: TcpStream, req: &Json, done: impl Fn(&Json) -> bool) -> Result<(), String> {
    writeln!(stream, "{}", req.to_string_compact()).map_err(|e| e.to_string())?;
    stream.flush().map_err(|e| e.to_string())?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() {
            continue;
        }
        println!("{line}");
        let doc = Json::parse(&line).map_err(|e| format!("bad response line: {e}"))?;
        if done(&doc) {
            return Ok(());
        }
    }
    Err("connection closed before a terminal response".into())
}

// ---------------------------------------------------------------------------
// bench
// ---------------------------------------------------------------------------

/// The committed-benchmark driver: exercises the serving layer's three
/// headline behaviours (admission + fresh runs, the result cache, and
/// crash recovery with resume) in-process and writes a run artifact.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("missing required option --out")?;
    let work = std::env::temp_dir().join(format!("louvaind-bench-{}", std::process::id()));
    std::fs::create_dir_all(&work).map_err(|e| e.to_string())?;

    let graph_path = work.join("lfr_1k.bin");
    let g = gen::lfr(gen::LfrParams::small(1000, 42)).graph;
    binio::write_edge_list(&graph_path, &g.to_edge_list()).map_err(|e| e.to_string())?;

    let server = Server::start(ServeConfig {
        workers: 2,
        checkpoint_root: work.join("ckpt"),
        verbose: false,
        ..ServeConfig::default()
    });

    let spec = |job_id: &str, ranks: usize| JobSpec {
        job_id: job_id.to_string(),
        graph: graph_path.clone(),
        ranks,
        cfg: distributed_louvain::dist::DistConfig::baseline(),
        fault_plan: None,
        max_crash_recoveries: None,
        max_hang_recoveries: None,
    };

    // a-base and a-repeat share a cache key; b-crash takes a mid-run
    // crash with budget 1 (absorbed in-run, resuming off the phase
    // checkpoint); c-p1 is a distinct key on one rank.
    let jobs: Vec<(&str, JobSpec)> = vec![
        ("a-base", spec("a-base", 2)),
        ("a-repeat", spec("a-repeat", 2)),
        ("b-crash", {
            // A distinct config (ET variant) so b-crash cannot hit
            // a-base's cache entry — the fault plan is deliberately not
            // part of the cache key.
            let mut job = spec("b-crash", 2);
            job.cfg.variant = distributed_louvain::dist::Variant::Et { alpha: 0.25 };
            job.fault_plan = Some("crash:rank=0,phase=1,op=0".into());
            job.max_crash_recoveries = Some(1);
            job
        }),
        ("c-p1", spec("c-p1", 1)),
    ];

    let mut entries: Vec<RunEntry> = Vec::new();
    for (name, job) in jobs {
        // Sequential submission keeps cache behaviour deterministic
        // (a-repeat must run after a-base finished).
        let seq = server
            .submit(job)
            .map_err(|e| format!("submit {name}: {e}"))?;
        let status = server.wait(seq).ok_or("job record vanished")?;
        let JobStatus::Done {
            cached,
            resumed_from_phase,
            crash_recoveries,
            result,
            ..
        } = &status
        else {
            return Err(format!("job {name} did not finish: {status:?}"));
        };
        println!(
            "job {name}: modularity {:.6}, {} communities, cached={cached}, \
             resumed_from_phase={resumed_from_phase:?}, crash_recoveries={crash_recoveries}",
            result.modularity, result.num_communities
        );
        for run in &result.artifact.runs {
            entries.push(RunEntry {
                label: format!("serve/{name}"),
                ..run.clone()
            });
        }
    }

    let snapshot = server.metrics_snapshot();
    server.drain();

    let hits = snapshot
        .counters
        .get("serve.cache_hits")
        .copied()
        .unwrap_or(0);
    let resumed = snapshot
        .counters
        .get("serve.jobs_resumed")
        .copied()
        .unwrap_or(0);
    if hits < 1 {
        return Err(format!("expected at least one cache hit, saw {hits}"));
    }
    if resumed < 1 {
        return Err(format!(
            "expected at least one checkpoint resume, saw {resumed}"
        ));
    }

    // Summary row: an otherwise-empty report carrying the server's
    // serve.* metrics, so `lens show` renders the job-latency
    // percentiles and `lens gate` keeps the row matched across PRs.
    entries.push(RunEntry {
        label: "serve/daemon".into(),
        report: RunReport {
            graph: "serve-daemon".into(),
            variant: "serve".into(),
            metrics: snapshot,
            ..RunReport::default()
        },
        telemetry: Vec::new(),
    });

    let artifact = RunArtifact {
        name: "BENCH_PR9".into(),
        description: "louvaind serving benchmark: fresh run, cache hit, \
                      crash-injected kill-and-resume, single-rank job; the \
                      serve/daemon row carries the serve.* metrics and the \
                      job-latency histogram"
            .into(),
        runs: entries,
    };
    std::fs::write(&out, artifact.to_json_string()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {out} ({} runs; cache_hits={hits}, jobs_resumed={resumed})",
        artifact.runs.len()
    );
    let _ = std::fs::remove_dir_all(&work);
    Ok(())
}
