//! `louvain` — command-line driver for the distributed Louvain library.
//!
//! ```text
//! louvain generate --kind lfr --n 10000 --seed 1 --out g.graph
//! louvain info g.graph
//! louvain run g.graph --ranks 8 --variant etc:0.25 --assignment out.comm
//! louvain quality --truth g.graph.truth --detected out.comm
//! ```
//!
//! Graphs use the binary edge-list format of the paper
//! (`louvain_graph::binio`); assignments and ground truth are plain text,
//! one community id per line, line number = vertex id.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use distributed_louvain::comm::{BackoffPolicy, FaultPlan, HealthConfig, RunConfig};
use distributed_louvain::dist::{
    adjusted_rand_index, f_score, nmi, run_distributed_resilient, run_distributed_resilient_source,
    CheckpointOptions, DistConfig, GraphSource, ResilOptions, SweepMode, Variant,
};
use distributed_louvain::graph::{binio, gen, textio, Csr, IngestError, IngestPolicy, VertexId};
use distributed_louvain::store::{self, Slab, SlabBuilder, SlabOptions, SlabSummary};
use distributed_louvain::{dist, obs};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("ingest") => cmd_ingest(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("quality") => cmd_quality(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
louvain — distributed Louvain community detection (IPDPS 2018 reproduction)

USAGE:
  louvain generate --kind <KIND> --n <N> [--seed <S>] --out <FILE>
                   [--slab [--chunk-edges <C>]]
      KIND: lfr | ssca2 | rmat | weblike | grid3d | erdos-renyi |
            watts-strogatz | barabasi-albert
      extra: --mu <F> (lfr), --avg-degree <F> (erdos-renyi)
      Writes <FILE> (binary edge list) and, when the generator plants
      communities, <FILE>.truth (one community id per line).
      --slab streams the generator straight into a slab file (on-disk
      CSR) instead: peak memory stays O(n + chunk) no matter how many
      edges are emitted. --chunk-edges tunes the spill-chunk size.

  louvain convert <TEXT-FILE> --out <FILE> [--repair | --strict] [--slab]
      Converts a text edge list (`src dst [weight]` per line, # comments,
      SNAP-style) to the binary format, remapping sparse ids densely.
      NaN/negative/overflowing weights are always rejected with the
      offending line number. --strict also rejects duplicate edges and
      self-loops; --repair merges duplicates (summing weights) and drops
      self-loops, printing what changed. --slab writes a slab (on-disk
      CSR) directly, streaming in two passes with no RAM-resident edge
      list; the policies behave identically.

  louvain ingest <FILE> --out <SLAB> [--repair | --strict]
                 [--chunk-edges <C>]
      Builds a slab — a versioned, checksummed on-disk CSR — from a
      binary edge list or a text edge list (detected by file magic),
      streaming with bounded memory: edges are chunk-sorted, spilled,
      and external-merged, so graphs far larger than RAM ingest cleanly.
      The resulting CSR is bit-identical to loading the same edges in
      memory.

  louvain info <FILE>
      Prints header, degree and clustering statistics of a binary graph
      file, or the header / section layout of a slab (after validating
      every section checksum).

  louvain run <FILE> [--slab [--ranged]]
              [--ranks <P>] [--variant <V>] [--threads-per-rank <T>]
              [--sweep <auto|colored|relaxed>]
              [--tau <F>] [--assignment <OUT>]
              [--trace-out <TRACE>] [--report-out <REPORT>]
              [--artifact-out <ARTIFACT>]
              [--checkpoint-dir <DIR>] [--checkpoint-every <K>] [--resume]
              [--fault-plan <SPEC>] [--max-recoveries <N>]
              [--comm-timeout-ms <MS>] [--max-retries <N>]
              [--backoff-base-ms <MS>] [--no-watchdog]
      V: baseline | cycling | et:<alpha> | etc:<alpha> | et+cycling:<alpha>
      Runs distributed Louvain on P simulated ranks, prints the summary,
      optionally writes the community assignment to <OUT>.
      --slab treats <FILE> as a slab: the file is memory-mapped once and
      every rank slices its piece zero-copy. Adding --ranged makes each
      rank instead read only its own byte ranges from the file (the
      paper's MPI-I/O pattern) — nothing is ever fully resident. Both
      paths are bit-identical to running the in-memory graph.
      --sweep picks the per-rank sweep schedule: `auto` (sequential at one
      thread, colored conflict-free batches otherwise), `colored` (force
      the deterministic colored schedule at any thread count), `relaxed`
      (legacy racing multithreaded sweep; results may vary with T).
      --trace-out enables tracing and writes a Chrome trace-event JSON
      (load in Perfetto / chrome://tracing; one process track per rank);
      a `.jsonl` extension selects line-delimited JSON instead.
      --report-out writes the aggregated RunReport JSON (per-step byte
      totals, modeled compute/comm/reduce breakdown, metrics, span
      rollup). Setting LOUVAIN_TRACE=1 also enables tracing.
      --artifact-out writes a versioned RunArtifact JSON (the unified
      schema `lens` consumes: RunReport + per-iteration convergence
      telemetry). Implies tracing, like --trace-out.
      --checkpoint-dir writes a checkpoint at every --checkpoint-every'th
      phase boundary (default 1); --resume restarts from the newest
      complete checkpoint in that directory. A run killed mid-flight and
      resumed produces bit-identical results to an uninterrupted run.
      --fault-plan injects deterministic comm faults, e.g.
      `seed=7;drop:prob=0.05;crash:rank=1,phase=2,op=0`
      (kinds: drop | delay | duplicate | truncate | corrupt-payload |
      flaky-burst[,len=K] | stall[,ms=MS] | hang | crash; hang/crash
      need rank=, optional phase=/op=). Crashes and watchdog-declared
      hangs are absorbed by restarting from the newest checkpoint, up
      to --max-recoveries times (default 8).
      --comm-timeout-ms sets the watchdog deadline per blocked wait
      (default 30000); after --max-retries deadline extensions (default
      3, exponential backoff from --backoff-base-ms, default 0.05) the
      silent rank is declared hung. --no-watchdog restores the legacy
      single hard timeout (no hang recovery).

  louvain quality --truth <FILE> --detected <FILE>
      Precision/recall/F-score (methodology of the paper's §V-D), NMI and
      adjusted Rand index between two assignment files.
";

/// Minimal `--key value` argument scanner.
struct Opts<'a> {
    args: &'a [String],
}

/// Flags that take no value; `positional()` must not skip the token
/// following one of these.
const BOOL_FLAGS: &[&str] = &[
    "--resume",
    "--repair",
    "--strict",
    "--no-watchdog",
    "--slab",
    "--ranged",
];

impl<'a> Opts<'a> {
    fn get(&self, key: &str) -> Option<&'a str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&'a str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option {key}"))
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v}")),
        }
    }

    /// Presence of a boolean flag (no value), e.g. `--resume`.
    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    /// First non-flag positional argument.
    fn positional(&self) -> Option<&'a str> {
        let mut skip = false;
        for a in self.args {
            if skip {
                skip = false;
                continue;
            }
            if a.starts_with("--") {
                skip = !BOOL_FLAGS.contains(&a.as_str());
                continue;
            }
            return Some(a);
        }
        None
    }
}

/// Parse a variant spec: `baseline`, `cycling`, `et:0.25`, `etc:0.75`,
/// `et+cycling:0.25`.
fn parse_variant(spec: &str) -> Result<Variant, String> {
    let (name, alpha) = match spec.split_once(':') {
        Some((n, a)) => {
            let alpha: f64 = a.parse().map_err(|_| format!("bad alpha in `{spec}`"))?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err(format!("alpha must be in [0,1], got {alpha}"));
            }
            (n, Some(alpha))
        }
        None => (spec, None),
    };
    match (name, alpha) {
        ("baseline", None) => Ok(Variant::Baseline),
        ("cycling", None) => Ok(Variant::ThresholdCycling),
        ("et", Some(a)) => Ok(Variant::Et { alpha: a }),
        ("etc", Some(a)) => Ok(Variant::Etc { alpha: a }),
        ("et+cycling", Some(a)) => Ok(Variant::EtPlusCycling { alpha: a }),
        _ => Err(format!(
            "unknown variant `{spec}` (expected baseline | cycling | et:<a> | etc:<a> | et+cycling:<a>)"
        )),
    }
}

/// A parsed `--kind` plus its parameters, shared by the in-memory and
/// the streamed `--slab` generation paths so both see identical specs.
enum GenSpec {
    Lfr(gen::LfrParams),
    Ssca2(gen::Ssca2Params),
    Rmat(gen::RmatParams),
    Weblike(gen::WeblikeParams),
    Grid3d(gen::Grid3dParams),
    ErdosRenyi(gen::ErdosRenyiParams),
    WattsStrogatz(gen::WattsStrogatzParams),
    BarabasiAlbert(gen::BarabasiAlbertParams),
}

impl GenSpec {
    fn parse(kind: &str, opts: &Opts) -> Result<Self, String> {
        let n: u64 = opts.parse("--n", 10_000u64)?;
        let seed: u64 = opts.parse("--seed", 1u64)?;
        Ok(match kind {
            "lfr" => {
                let mu: f64 = opts.parse("--mu", 0.1f64)?;
                GenSpec::Lfr(gen::LfrParams {
                    mu,
                    ..gen::LfrParams::small(n, seed)
                })
            }
            "ssca2" => GenSpec::Ssca2(gen::Ssca2Params::paper(n, seed)),
            "rmat" => {
                let scale = (63 - n.max(2).leading_zeros() as u64) as u32;
                GenSpec::Rmat(gen::RmatParams::social(scale, 8, seed))
            }
            "weblike" => GenSpec::Weblike(gen::WeblikeParams::web(n, seed)),
            "grid3d" => GenSpec::Grid3d(gen::Grid3dParams::cube(n, seed)),
            "erdos-renyi" => {
                let d: f64 = opts.parse("--avg-degree", 8.0f64)?;
                GenSpec::ErdosRenyi(gen::ErdosRenyiParams {
                    n,
                    avg_degree: d,
                    seed,
                })
            }
            "watts-strogatz" => GenSpec::WattsStrogatz(gen::WattsStrogatzParams {
                n,
                k: 4,
                beta: 0.1,
                seed,
            }),
            "barabasi-albert" => {
                GenSpec::BarabasiAlbert(gen::BarabasiAlbertParams { n, m: 4, seed })
            }
            other => return Err(format!("unknown generator kind `{other}`")),
        })
    }

    /// Vertex count of the stream this spec will emit — what sizes the
    /// slab builder before the first edge exists.
    fn num_vertices(&self) -> u64 {
        match self {
            GenSpec::Lfr(p) => p.n,
            GenSpec::Ssca2(p) => p.n,
            GenSpec::Rmat(p) => 1 << p.scale,
            GenSpec::Weblike(p) => p.n,
            GenSpec::Grid3d(p) => p.nx * p.ny * p.nz,
            GenSpec::ErdosRenyi(p) => p.n,
            GenSpec::WattsStrogatz(p) => p.n,
            GenSpec::BarabasiAlbert(p) => p.n,
        }
    }

    /// Feed the generator's streamed path into `sink`, returning any
    /// planted ground truth.
    fn stream<S: distributed_louvain::graph::EdgeSink>(
        self,
        sink: &mut S,
    ) -> Result<Option<Vec<VertexId>>, IngestError> {
        Ok(match self {
            GenSpec::Lfr(p) => Some(gen::lfr_stream(p, sink)?),
            GenSpec::Ssca2(p) => Some(gen::ssca2_stream(p, sink)?),
            GenSpec::Weblike(p) => Some(gen::weblike_stream(p, sink)?),
            GenSpec::Rmat(p) => {
                gen::rmat_stream(p, sink)?;
                None
            }
            GenSpec::Grid3d(p) => {
                gen::grid3d_stream(p, sink)?;
                None
            }
            GenSpec::ErdosRenyi(p) => {
                gen::erdos_renyi_stream(p, sink)?;
                None
            }
            GenSpec::WattsStrogatz(p) => {
                gen::watts_strogatz_stream(p, sink)?;
                None
            }
            GenSpec::BarabasiAlbert(p) => {
                gen::barabasi_albert_stream(p, sink)?;
                None
            }
        })
    }

    fn generate(self) -> gen::Generated {
        match self {
            GenSpec::Lfr(p) => gen::lfr(p),
            GenSpec::Ssca2(p) => gen::ssca2(p),
            GenSpec::Rmat(p) => gen::rmat(p),
            GenSpec::Weblike(p) => gen::weblike(p),
            GenSpec::Grid3d(p) => gen::grid3d(p),
            GenSpec::ErdosRenyi(p) => gen::erdos_renyi(p),
            GenSpec::WattsStrogatz(p) => gen::watts_strogatz(p),
            GenSpec::BarabasiAlbert(p) => gen::barabasi_albert(p),
        }
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let opts = Opts { args };
    let kind = opts.require("--kind")?;
    let out = PathBuf::from(opts.require("--out")?);
    let spec = GenSpec::parse(kind, &opts)?;

    if opts.has("--slab") {
        let sopts = slab_options(&opts, IngestPolicy::Lenient)?;
        let mut b = SlabBuilder::new(spec.num_vertices(), sopts);
        let truth = spec
            .stream(&mut b)
            .map_err(|e| format!("generating {kind}: {e}"))?;
        let summary = b
            .finish(&out)
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!(
            "wrote {} ({} vertices, {} edges, {} arcs, {} bytes; slab)",
            out.display(),
            summary.num_vertices,
            summary.num_edges,
            summary.num_arcs,
            summary.file_bytes
        );
        if let Some(truth) = truth {
            let truth_path = truth_sibling(&out);
            write_assignment(&truth_path, &truth)?;
            println!("wrote {} (ground truth)", truth_path.display());
        }
        return Ok(());
    }

    let generated = spec.generate();
    binio::write_edge_list(&out, &generated.graph.to_edge_list())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} vertices, {} edges)",
        out.display(),
        generated.graph.num_vertices(),
        generated.graph.num_edges()
    );
    if let Some(truth) = generated.ground_truth {
        let truth_path = truth_sibling(&out);
        write_assignment(&truth_path, &truth)?;
        println!("wrote {} (ground truth)", truth_path.display());
    }
    Ok(())
}

/// Shared `--repair` / `--strict` handling.
fn parse_policy(opts: &Opts) -> Result<IngestPolicy, String> {
    if opts.has("--repair") && opts.has("--strict") {
        return Err("--repair and --strict are mutually exclusive".into());
    }
    Ok(if opts.has("--repair") {
        IngestPolicy::Repair
    } else if opts.has("--strict") {
        IngestPolicy::Strict
    } else {
        IngestPolicy::Lenient
    })
}

/// Slab-builder tuning from CLI flags.
fn slab_options(opts: &Opts, policy: IngestPolicy) -> Result<SlabOptions, String> {
    let defaults = SlabOptions::default();
    Ok(SlabOptions {
        policy,
        chunk_edges: opts.parse("--chunk-edges", defaults.chunk_edges)?,
        index_stride: opts.parse("--index-stride", defaults.index_stride)?,
        ..defaults
    })
}

/// What a file holds, sniffed from its first eight bytes.
enum FileKind {
    Slab,
    BinaryEdges,
    Text,
}

fn sniff_kind(path: &Path) -> Result<FileKind, String> {
    use std::io::Read;
    let mut f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut head = [0u8; 8];
    if f.read_exact(&mut head).is_err() {
        // Too short for any binary header — let the text parser report.
        return Ok(FileKind::Text);
    }
    // Both magics put a 7-byte signature above a version byte.
    Ok(match u64::from_le_bytes(head) & !0xFF {
        store::MAGIC_SIGNATURE => FileKind::Slab,
        binio::MAGIC_SIGNATURE => FileKind::BinaryEdges,
        _ => FileKind::Text,
    })
}

fn print_slab_summary(input: &Path, out: &Path, s: &SlabSummary) {
    println!(
        "ingested {} -> {} ({} vertices, {} edges, {} arcs, {} raw edges in, {} bytes)",
        input.display(),
        out.display(),
        s.num_vertices,
        s.num_edges,
        s.num_arcs,
        s.edges_in,
        s.file_bytes
    );
    if s.repair.any() {
        println!(
            "repaired: {} duplicate edges merged, {} self-loops dropped",
            s.repair.duplicates_merged, s.repair.self_loops_dropped
        );
    }
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let opts = Opts { args };
    let input = PathBuf::from(opts.positional().ok_or("missing input file")?);
    let out = PathBuf::from(opts.require("--out")?);
    let policy = parse_policy(&opts)?;
    let sopts = slab_options(&opts, policy)?;
    let summary = match sniff_kind(&input)? {
        FileKind::Slab => {
            return Err(format!("{} is already a slab", input.display()));
        }
        FileKind::BinaryEdges => {
            let header = binio::read_header(&input).map_err(|e| e.to_string())?;
            let mut b = SlabBuilder::new(header.num_vertices, sopts);
            binio::stream_edge_records(&input, &mut b)
                .map_err(|e| format!("{}: {e}", input.display()))?;
            b.finish(&out)
                .map_err(|e| format!("writing {}: {e}", out.display()))?
        }
        FileKind::Text => {
            let (b, _original_ids) =
                textio::stream_text_edge_list(&input, |n| SlabBuilder::new(n, sopts))
                    .map_err(|e| format!("{}: {e}", input.display()))?;
            b.finish(&out)
                .map_err(|e| format!("writing {}: {e}", out.display()))?
        }
    };
    print_slab_summary(&input, &out, &summary);
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let opts = Opts { args };
    let input = PathBuf::from(opts.positional().ok_or("missing text edge-list file")?);
    let out = PathBuf::from(opts.require("--out")?);
    let policy = parse_policy(&opts)?;
    if opts.has("--slab") {
        // Streamed two-pass conversion: no RAM-resident edge list; the
        // builder enforces the self-loop/duplicate policy.
        let sopts = slab_options(&opts, policy)?;
        let (b, _original_ids) =
            textio::stream_text_edge_list(&input, |n| SlabBuilder::new(n, sopts))
                .map_err(|e| format!("{}: {e}", input.display()))?;
        let summary = b
            .finish(&out)
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        print_slab_summary(&input, &out, &summary);
        return Ok(());
    }
    let imported = textio::read_text_edge_list_policy(&input, policy)
        .map_err(|e| format!("{}: {e}", input.display()))?;
    binio::write_edge_list(&out, &imported.edges)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "converted {} -> {} ({} vertices, {} edges; sparse ids remapped densely)",
        input.display(),
        out.display(),
        imported.edges.num_vertices(),
        imported.edges.num_edges()
    );
    if imported.repairs.any() {
        println!(
            "repaired: {} duplicate edges merged, {} self-loops dropped",
            imported.repairs.duplicates_merged, imported.repairs.self_loops_dropped
        );
    }
    Ok(())
}

fn slab_info(path: &Path) -> Result<(), String> {
    // Full open: validates the header, the section table, and every
    // section checksum before printing anything.
    let slab = Slab::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let two_m: f64 = slab.halo().iter().sum();
    println!("file:         {}", path.display());
    println!(
        "format:       slab v{} (all section checksums OK)",
        store::FORMAT_VERSION as char
    );
    println!("vertices:     {}", slab.num_vertices());
    println!("edges:        {}", slab.num_edges());
    println!("arcs:         {}", slab.num_arcs());
    println!("total weight: {}", two_m / 2.0);
    println!("file bytes:   {}", slab.mapped_bytes());
    if slab.num_edges() > 0 {
        println!(
            "bytes/edge:   {:.1}",
            slab.mapped_bytes() as f64 / slab.num_edges() as f64
        );
    }
    println!("index stride: {}", slab.index_stride());
    let header = store::peek_header(path).map_err(|e| format!("{}: {e}", path.display()))?;
    for (i, name) in store::SECTION_NAMES.iter().enumerate() {
        let s = header.sections[i];
        println!(
            "section:      {name:<8} offset {:>12}  len {:>12}  fnv1a {:016x}",
            s.offset, s.len, s.checksum
        );
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let opts = Opts { args };
    let path = PathBuf::from(opts.positional().ok_or("missing graph file")?);
    if matches!(sniff_kind(&path)?, FileKind::Slab) {
        return slab_info(&path);
    }
    let header = binio::read_header(&path).map_err(|e| e.to_string())?;
    let el = binio::read_edge_list(&path).map_err(|e| e.to_string())?;
    let g = Csr::from_edge_list(el);
    let mut degs: Vec<usize> = (0..g.num_vertices()).map(|v| g.degree(v as u64)).collect();
    degs.sort_unstable();
    let nz = degs.iter().filter(|&&d| d > 0).count();
    println!("file:         {}", path.display());
    println!("vertices:     {}", header.num_vertices);
    println!("edges:        {}", header.num_edges);
    println!("arcs (2E):    {}", g.num_arcs());
    println!("total weight: {}", g.two_m() / 2.0);
    println!("isolated:     {}", g.num_vertices() - nz);
    println!("max degree:   {}", degs.last().copied().unwrap_or(0));
    println!(
        "median degree: {}",
        degs.get(degs.len() / 2).copied().unwrap_or(0)
    );
    if g.num_vertices() <= 200_000 {
        println!(
            "clustering:   {:.4}",
            distributed_louvain::graph::metrics::clustering_coefficient(&g)
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = Opts { args };
    let path = PathBuf::from(opts.positional().ok_or("missing graph file")?);
    let ranks: usize = opts.parse("--ranks", 4usize)?;
    let threads: usize = opts.parse("--threads-per-rank", 1usize)?;
    let sweep = match opts.get("--sweep") {
        Some(s) => SweepMode::parse(s).map_err(|e| format!("--sweep: {e}"))?,
        None => SweepMode::Auto,
    };
    let tau: f64 = opts.parse("--tau", 1e-6f64)?;
    let variant = parse_variant(opts.get("--variant").unwrap_or("baseline"))?;
    let trace_out = opts.get("--trace-out").map(PathBuf::from);
    let report_out = opts.get("--report-out").map(PathBuf::from);
    let artifact_out = opts.get("--artifact-out").map(PathBuf::from);
    let checkpoint_dir = opts.get("--checkpoint-dir").map(PathBuf::from);
    let checkpoint_every: u64 = opts.parse("--checkpoint-every", 1u64)?;
    let resume = opts.has("--resume");
    let max_recoveries: usize = opts.parse("--max-recoveries", 8usize)?;
    let fault_plan = match opts.get("--fault-plan") {
        Some(spec) => Some(FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?),
        None => None,
    };
    if resume && checkpoint_dir.is_none() {
        return Err("--resume requires --checkpoint-dir".into());
    }
    let health = {
        let defaults = HealthConfig::default();
        let timeout_ms: u64 =
            opts.parse("--comm-timeout-ms", defaults.deadline.as_millis() as u64)?;
        if timeout_ms == 0 {
            return Err("--comm-timeout-ms must be positive".into());
        }
        let backoff_ms: f64 = opts.parse(
            "--backoff-base-ms",
            defaults.backoff.base.as_secs_f64() * 1e3,
        )?;
        if !backoff_ms.is_finite() || backoff_ms < 0.0 {
            return Err("--backoff-base-ms must be a non-negative number".into());
        }
        HealthConfig {
            enabled: !opts.has("--no-watchdog"),
            deadline: std::time::Duration::from_millis(timeout_ms),
            max_retries: opts.parse("--max-retries", defaults.max_retries)?,
            backoff: BackoffPolicy {
                base: std::time::Duration::from_secs_f64(backoff_ms * 1e-3),
                ..defaults.backoff
            },
            ..defaults
        }
    };

    // LOUVAIN_TRACE=1 enables tracing too; --trace-out and
    // --artifact-out imply it (telemetry rides on the span machinery).
    let use_slab = opts.has("--slab");
    let ranged = opts.has("--ranged");
    if ranged && !use_slab {
        return Err("--ranged requires --slab".into());
    }

    obs::init_from_env();
    if trace_out.is_some() || artifact_out.is_some() {
        obs::set_enabled(true);
    }

    let cfg = DistConfig {
        threshold: tau,
        threads_per_rank: threads,
        sweep,
        ..DistConfig::with_variant(variant)
    };
    let runcfg = RunConfig {
        fault: fault_plan.map(std::sync::Arc::new),
        health,
        ..RunConfig::default()
    };
    let resil = ResilOptions {
        checkpoint: checkpoint_dir.map(|dir| CheckpointOptions::new(dir).every(checkpoint_every)),
        resume,
        max_recoveries,
        ..ResilOptions::none()
    };
    let (out, n_vertices, n_edges) = if use_slab {
        if ranged {
            // Validate the header up front so a corrupt file fails here,
            // loudly, instead of inside a rank thread.
            let h = store::peek_header(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "graph: {} vertices, {} edges (slab, per-rank byte-range loads); running {} on {ranks} ranks × {threads} threads",
                h.num_vertices,
                h.num_edges,
                variant.label()
            );
            let out = run_distributed_resilient_source(
                GraphSource::SlabRanged(&path),
                ranks,
                &cfg,
                runcfg,
                &resil,
            )?;
            (out, h.num_vertices, h.num_edges)
        } else {
            let slab = Slab::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            println!(
                "graph: {} vertices, {} edges (slab, mmap); running {} on {ranks} ranks × {threads} threads",
                slab.num_vertices(),
                slab.num_edges(),
                variant.label()
            );
            let nv = slab.num_vertices();
            let ne = slab.num_edges();
            let out = run_distributed_resilient_source(
                GraphSource::SlabMapped(&slab),
                ranks,
                &cfg,
                runcfg,
                &resil,
            )?;
            (out, nv, ne)
        }
    } else {
        let el = binio::read_edge_list(&path).map_err(|e| e.to_string())?;
        let g = Csr::from_edge_list(el);
        println!(
            "graph: {} vertices, {} edges; running {} on {ranks} ranks × {threads} threads",
            g.num_vertices(),
            g.num_edges(),
            variant.label()
        );
        let nv = g.num_vertices() as u64;
        let ne = g.num_edges() as u64;
        let out = run_distributed_resilient(&g, ranks, &cfg, runcfg, &resil)?;
        (out, nv, ne)
    };
    println!("modularity:    {:.6}", out.modularity);
    println!("communities:   {}", out.num_communities);
    println!("phases:        {}", out.phases);
    println!("iterations:    {}", out.total_iterations);
    println!("modeled time:  {:.4} s", out.modeled_seconds);
    println!("wall time:     {:.4} s", out.wall.as_secs_f64());
    println!(
        "traffic:       {} p2p msgs, {} KiB, {} collectives",
        out.traffic.p2p_messages,
        out.traffic.p2p_bytes / 1024,
        out.traffic.collective_calls
    );
    if out.traffic.wait_nanos_total() > 0 {
        // Idle time blocked on peers, split out of the comm steps by the
        // wait/transfer sub-spans (summed across ranks).
        println!(
            "blocked wait:  {:.3} ms across ranks (worst step: {})",
            out.traffic.wait_nanos_total() as f64 * 1e-6,
            distributed_louvain::comm::CommStep::ALL
                .iter()
                .max_by_key(|s| out.traffic.step_wait_nanos_for(**s))
                .map(|s| s.label())
                .unwrap_or("other"),
        );
    }
    if let Some(phase) = out.resumed_from_phase {
        println!("resumed from phase {phase}");
    }
    // Checkpoint retention: with the run complete, phase dirs below the
    // newest manifest can never be resumed from again — prune them.
    // Only on success: a failed run keeps everything restorable.
    if let Some(ckpt) = resil.checkpoint.as_ref() {
        if let Ok(store) = distributed_louvain::resil::CheckpointStore::new(&ckpt.dir) {
            match store.prune_superseded() {
                Ok(0) => {}
                Ok(n) => println!("checkpoints:   pruned {n} superseded phase dir(s)"),
                Err(e) => eprintln!("warning: checkpoint retention failed: {e}"),
            }
        }
    }
    if out.recoveries > 0 {
        println!(
            "recoveries:    {} ({} crash, {} hang)",
            out.recoveries,
            out.recoveries - out.hung_events.len() as u64,
            out.hung_events.len()
        );
    }
    for h in &out.hung_events {
        println!(
            "hung rank:     rank {} declared by rank {} in phase {} op {} after {} ms",
            h.rank, h.detector, h.phase, h.op, h.waited_ms
        );
    }
    let t = &out.traffic;
    if t.fault_drops
        + t.fault_delays
        + t.fault_duplicates
        + t.fault_truncations
        + t.fault_stalls
        + t.fault_corruptions
        + t.fault_bursts
        > 0
    {
        println!(
            "faults:        {} dropped, {} delayed, {} duplicated, {} truncated, {} stalled, {} corrupted, {} burst-dropped; {} retries",
            t.fault_drops,
            t.fault_delays,
            t.fault_duplicates,
            t.fault_truncations,
            t.fault_stalls,
            t.fault_corruptions,
            t.fault_bursts,
            t.fault_retries
        );
    }
    if t.wd_timeouts + t.wd_retries + t.wd_stragglers + t.checksum_rejects > 0 {
        println!(
            "watchdog:      {} timeouts, {} retries, {} straggler extensions, {} checksum rejects, {:.3} ms backoff",
            t.wd_timeouts,
            t.wd_retries,
            t.wd_stragglers,
            t.checksum_rejects,
            t.backoff_nanos as f64 * 1e-6
        );
    }

    if let Some(dest) = opts.get("--assignment") {
        write_assignment(Path::new(dest), &out.assignment)?;
        println!("wrote {dest}");
    }
    if let Some(dest) = &trace_out {
        let trace = out
            .trace
            .as_ref()
            .ok_or("tracing produced no data (was it disabled mid-run?)")?;
        let text = if dest.extension().is_some_and(|e| e == "jsonl") {
            obs::jsonl(trace)
        } else {
            obs::chrome_trace_json(trace)
        };
        std::fs::write(dest, text).map_err(|e| format!("{}: {e}", dest.display()))?;
        println!(
            "wrote {} ({} events, {} dropped)",
            dest.display(),
            trace.total_events(),
            trace.total_dropped()
        );
    }
    if report_out.is_some() || artifact_out.is_some() {
        let meta = dist::ReportMeta::new(
            path.file_name()
                .map(|f| f.to_string_lossy().into_owned())
                .unwrap_or_default(),
            n_vertices,
            n_edges,
        )
        .variant(variant.label())
        .threads_per_rank(threads);
        let report = dist::build_run_report(&out, &meta);
        if let Some(dest) = &report_out {
            std::fs::write(dest, report.to_json_string())
                .map_err(|e| format!("{}: {e}", dest.display()))?;
            println!("wrote {}", dest.display());
        }
        if let Some(dest) = &artifact_out {
            let telemetry = out
                .trace
                .as_ref()
                .map(|t| t.merged_telemetry())
                .unwrap_or_default();
            let mode = if cfg.delta_ghost_refresh {
                "delta"
            } else {
                "full"
            };
            let artifact = obs::RunArtifact {
                name: "louvain-cli".into(),
                description: format!(
                    "louvain run {} on {ranks} ranks ({})",
                    report.graph,
                    variant.label()
                ),
                runs: vec![obs::RunEntry {
                    label: obs::run_label(&report.graph, ranks, mode),
                    report,
                    telemetry,
                }],
            };
            std::fs::write(dest, artifact.to_json_string())
                .map_err(|e| format!("{}: {e}", dest.display()))?;
            println!("wrote {} (run artifact)", dest.display());
        }
    }
    // If the generator left a ground-truth file next to the input, score
    // against it automatically.
    let truth_path = truth_sibling(&path);
    if truth_path.exists() {
        let truth = read_assignment(&truth_path)?;
        if truth.len() == out.assignment.len() {
            let q = f_score(&truth, &out.assignment);
            println!(
                "vs ground truth: precision {:.4}, recall {:.4}, F {:.4}, NMI {:.4}",
                q.precision,
                q.recall,
                q.f_score,
                nmi(&truth, &out.assignment)
            );
        }
    }
    Ok(())
}

fn cmd_quality(args: &[String]) -> Result<(), String> {
    let opts = Opts { args };
    let truth = read_assignment(Path::new(opts.require("--truth")?))?;
    let detected = read_assignment(Path::new(opts.require("--detected")?))?;
    if truth.len() != detected.len() {
        return Err(format!(
            "length mismatch: truth has {} vertices, detected {}",
            truth.len(),
            detected.len()
        ));
    }
    let q = f_score(&truth, &detected);
    println!("precision: {:.6}", q.precision);
    println!("recall:    {:.6}", q.recall);
    println!("f_score:   {:.6}", q.f_score);
    println!("nmi:       {:.6}", nmi(&truth, &detected));
    println!("ari:       {:.6}", adjusted_rand_index(&truth, &detected));
    Ok(())
}

/// `<file>.truth` next to a graph file.
fn truth_sibling(graph_path: &Path) -> PathBuf {
    let mut os = graph_path.as_os_str().to_owned();
    os.push(".truth");
    PathBuf::from(os)
}

fn write_assignment(path: &Path, assignment: &[VertexId]) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut w = std::io::BufWriter::new(f);
    for c in assignment {
        writeln!(w, "{c}").map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())
}

fn read_assignment(path: &Path) -> Result<Vec<VertexId>, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = Vec::new();
    for (i, line) in std::io::BufReader::new(f).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(
            line.parse()
                .map_err(|_| format!("{}:{}: not a community id: {line}", path.display(), i + 1))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_parsing() {
        assert_eq!(parse_variant("baseline").unwrap(), Variant::Baseline);
        assert_eq!(parse_variant("cycling").unwrap(), Variant::ThresholdCycling);
        assert_eq!(
            parse_variant("et:0.25").unwrap(),
            Variant::Et { alpha: 0.25 }
        );
        assert_eq!(
            parse_variant("etc:0.75").unwrap(),
            Variant::Etc { alpha: 0.75 }
        );
        assert_eq!(
            parse_variant("et+cycling:0.5").unwrap(),
            Variant::EtPlusCycling { alpha: 0.5 }
        );
        assert!(parse_variant("et").is_err());
        assert!(parse_variant("et:2.0").is_err());
        assert!(parse_variant("bogus").is_err());
    }

    #[test]
    fn opts_scanner() {
        let args: Vec<String> = ["g.graph", "--ranks", "8", "--variant", "et:0.5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Opts { args: &args };
        assert_eq!(o.positional(), Some("g.graph"));
        assert_eq!(o.get("--ranks"), Some("8"));
        assert_eq!(o.parse("--ranks", 0usize).unwrap(), 8);
        assert_eq!(o.parse("--missing", 3usize).unwrap(), 3);
        assert!(o.require("--nope").is_err());
    }

    #[test]
    fn boolean_flags_do_not_swallow_the_positional() {
        // `--resume` takes no value: the token after it is the graph file.
        let args: Vec<String> = ["--resume", "g.graph", "--ranks", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Opts { args: &args };
        assert!(o.has("--resume"));
        assert!(!o.has("--checkpoint-dir"));
        assert_eq!(o.positional(), Some("g.graph"));
    }

    #[test]
    fn assignment_roundtrip() {
        let dir = std::env::temp_dir().join("louvain-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.comm");
        write_assignment(&path, &[3, 1, 4, 1, 5]).unwrap();
        assert_eq!(read_assignment(&path).unwrap(), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn truth_sibling_appends_extension() {
        assert_eq!(
            truth_sibling(Path::new("/tmp/g.graph")),
            PathBuf::from("/tmp/g.graph.truth")
        );
    }

    #[test]
    fn end_to_end_generate_run_quality() {
        let dir = std::env::temp_dir().join("louvain-cli-e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("t.graph");
        let assign = dir.join("t.comm");
        let s = |x: &str| x.to_string();
        cmd_generate(&[
            s("--kind"),
            s("lfr"),
            s("--n"),
            s("800"),
            s("--seed"),
            s("5"),
            s("--out"),
            s(graph.to_str().unwrap()),
        ])
        .unwrap();
        assert!(graph.exists());
        assert!(truth_sibling(&graph).exists());
        cmd_info(&[s(graph.to_str().unwrap())]).unwrap();
        let trace = dir.join("t.trace.json");
        let report = dir.join("t.report.json");
        cmd_run(&[
            s(graph.to_str().unwrap()),
            s("--ranks"),
            s("2"),
            s("--variant"),
            s("etc:0.25"),
            s("--assignment"),
            s(assign.to_str().unwrap()),
            s("--trace-out"),
            s(trace.to_str().unwrap()),
            s("--report-out"),
            s(report.to_str().unwrap()),
        ])
        .unwrap();
        assert!(assign.exists());
        // The trace is valid JSON with a traceEvents array; the report
        // round-trips through the RunReport parser.
        let doc = obs::Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        assert!(!doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
        let rep =
            obs::RunReport::from_json_str(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(rep.ranks, 2);
        assert!(rep.total_bytes > 0);
        cmd_quality(&[
            s("--truth"),
            s(truth_sibling(&graph).to_str().unwrap()),
            s("--detected"),
            s(assign.to_str().unwrap()),
        ])
        .unwrap();
    }

    #[test]
    fn end_to_end_slab_flow_matches_in_memory() {
        let dir = std::env::temp_dir().join("louvain-cli-slab");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("s.graph");
        let slab = dir.join("s.slab");
        let s = |x: &str| x.to_string();
        let p = |x: &Path| s(x.to_str().unwrap());
        // The same spec through both writers: binary edge list + slab.
        for extra in [None, Some("--slab")] {
            let mut args = vec![
                s("--kind"),
                s("ssca2"),
                s("--n"),
                s("600"),
                s("--seed"),
                s("3"),
                s("--out"),
                if extra.is_some() { p(&slab) } else { p(&graph) },
            ];
            if let Some(f) = extra {
                args.push(s(f));
            }
            cmd_generate(&args).unwrap();
        }
        assert!(truth_sibling(&slab).exists());
        // Slab-aware info validates every checksum before printing.
        cmd_info(&[p(&slab)]).unwrap();
        // All three load paths must produce the identical assignment.
        let mem = dir.join("mem.comm");
        let mapped = dir.join("map.comm");
        let ranged = dir.join("rng.comm");
        cmd_run(&[p(&graph), s("--ranks"), s("2"), s("--assignment"), p(&mem)]).unwrap();
        cmd_run(&[
            s("--slab"),
            p(&slab),
            s("--ranks"),
            s("2"),
            s("--assignment"),
            p(&mapped),
        ])
        .unwrap();
        cmd_run(&[
            s("--slab"),
            s("--ranged"),
            p(&slab),
            s("--ranks"),
            s("2"),
            s("--assignment"),
            p(&ranged),
        ])
        .unwrap();
        let want = read_assignment(&mem).unwrap();
        assert_eq!(want, read_assignment(&mapped).unwrap());
        assert_eq!(want, read_assignment(&ranged).unwrap());
        // Ingesting the binary edge list replays the identical edge
        // stream, so the slab files are byte-identical.
        let ingested = dir.join("i.slab");
        cmd_ingest(&[p(&graph), s("--out"), p(&ingested)]).unwrap();
        assert_eq!(
            std::fs::read(&slab).unwrap(),
            std::fs::read(&ingested).unwrap()
        );
        // --ranged without --slab is refused.
        let err = cmd_run(&[s("--ranged"), p(&graph)]).unwrap_err();
        assert!(err.contains("--slab"), "unexpected error: {err}");
    }

    #[test]
    fn convert_slab_matches_in_memory_convert() {
        let dir = std::env::temp_dir().join("louvain-cli-convert-slab");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = dir.join("t.txt");
        // Sparse ids, duplicates, and a self-loop exercise the repair
        // policy on both paths.
        std::fs::write(
            &text,
            "# test\n100 200\n200 300 2.0\n300 100\n100 200 0.5\n300 300\n400 100\n",
        )
        .unwrap();
        let bin = dir.join("t.bin");
        let slab = dir.join("t.slab");
        let s = |x: &str| x.to_string();
        let p = |x: &Path| s(x.to_str().unwrap());
        cmd_convert(&[p(&text), s("--out"), p(&bin), s("--repair")]).unwrap();
        cmd_convert(&[p(&text), s("--out"), p(&slab), s("--repair"), s("--slab")]).unwrap();
        let mem = dir.join("mem.comm");
        let mapped = dir.join("map.comm");
        cmd_run(&[p(&bin), s("--ranks"), s("2"), s("--assignment"), p(&mem)]).unwrap();
        cmd_run(&[
            s("--slab"),
            p(&slab),
            s("--ranks"),
            s("2"),
            s("--assignment"),
            p(&mapped),
        ])
        .unwrap();
        assert_eq!(
            read_assignment(&mem).unwrap(),
            read_assignment(&mapped).unwrap()
        );
        // Strict conversion rejects the duplicate on both paths.
        assert!(cmd_convert(&[p(&text), s("--out"), p(&bin), s("--strict")]).is_err());
        assert!(
            cmd_convert(&[p(&text), s("--out"), p(&slab), s("--strict"), s("--slab")]).is_err()
        );
    }

    #[test]
    fn corrupt_slab_fails_loudly_on_every_path() {
        let dir = std::env::temp_dir().join("louvain-cli-slab-corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let slab = dir.join("c.slab");
        let s = |x: &str| x.to_string();
        let p = |x: &Path| s(x.to_str().unwrap());
        cmd_generate(&[
            s("--kind"),
            s("lfr"),
            s("--n"),
            s("400"),
            s("--seed"),
            s("2"),
            s("--out"),
            p(&slab),
            s("--slab"),
        ])
        .unwrap();
        let pristine = std::fs::read(&slab).unwrap();
        let header = store::peek_header(&slab).unwrap();
        // Flip one byte inside the offsets section: `info` and mmap runs
        // validate every checksum up front and must name the section.
        let mut bytes = pristine.clone();
        bytes[header.sections[0].offset as usize] ^= 0xFF;
        std::fs::write(&slab, &bytes).unwrap();
        let err = cmd_info(&[p(&slab)]).unwrap_err();
        assert!(
            err.contains("checksum mismatch") && err.contains("offsets"),
            "unexpected error: {err}"
        );
        let err = cmd_run(&[s("--slab"), p(&slab), s("--ranks"), s("2")]).unwrap_err();
        assert!(
            err.contains("checksum mismatch") && err.contains("offsets"),
            "unexpected error: {err}"
        );
        // The ranged path reads only its own byte ranges of the big
        // sections, but checksums the small sections it reads whole —
        // corrupt the halo and the per-rank load must fail loudly too.
        let mut bytes = pristine.clone();
        bytes[header.sections[3].offset as usize] ^= 0xFF;
        std::fs::write(&slab, &bytes).unwrap();
        let err =
            cmd_run(&[s("--slab"), s("--ranged"), p(&slab), s("--ranks"), s("2")]).unwrap_err();
        assert!(
            err.contains("checksum mismatch") && err.contains("halo"),
            "unexpected error: {err}"
        );
        // Truncation is a distinct typed error.
        std::fs::write(&slab, &pristine[..100]).unwrap();
        let err = cmd_run(&[s("--slab"), p(&slab), s("--ranks"), s("2")]).unwrap_err();
        assert!(err.contains("truncated"), "unexpected error: {err}");
        // Re-ingesting a slab is refused by the magic sniff.
        let err = cmd_ingest(&[p(&slab), s("--out"), p(&dir.join("x.slab"))]).unwrap_err();
        assert!(err.contains("already a slab"), "unexpected error: {err}");
    }

    #[test]
    fn end_to_end_crash_and_resume_flow() {
        let dir = std::env::temp_dir().join("louvain-cli-resil");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("r.graph");
        let ckpt = dir.join("ckpt");
        let clean = dir.join("clean.comm");
        let resumed = dir.join("resumed.comm");
        let s = |x: &str| x.to_string();
        cmd_generate(&[
            s("--kind"),
            s("lfr"),
            s("--n"),
            s("900"),
            s("--seed"),
            s("11"),
            s("--out"),
            s(graph.to_str().unwrap()),
        ])
        .unwrap();
        // Reference: uninterrupted run.
        cmd_run(&[
            s(graph.to_str().unwrap()),
            s("--ranks"),
            s("2"),
            s("--assignment"),
            s(clean.to_str().unwrap()),
        ])
        .unwrap();
        // Stage 1: checkpointed run killed by an injected crash, with no
        // recovery budget — must fail, leaving a phase-1 checkpoint behind.
        let err = cmd_run(&[
            s(graph.to_str().unwrap()),
            s("--ranks"),
            s("2"),
            s("--checkpoint-dir"),
            s(ckpt.to_str().unwrap()),
            s("--fault-plan"),
            s("crash:rank=0,phase=1,op=0"),
            s("--max-recoveries"),
            s("0"),
        ])
        .unwrap_err();
        assert!(err.contains("rank 0"), "unexpected error: {err}");
        assert!(ckpt.join("LATEST").exists());
        // Stage 2: --resume continues from the checkpoint and reproduces
        // the uninterrupted assignment exactly.
        cmd_run(&[
            s("--resume"),
            s(graph.to_str().unwrap()),
            s("--ranks"),
            s("2"),
            s("--checkpoint-dir"),
            s(ckpt.to_str().unwrap()),
            s("--assignment"),
            s(resumed.to_str().unwrap()),
        ])
        .unwrap();
        assert_eq!(
            read_assignment(&clean).unwrap(),
            read_assignment(&resumed).unwrap()
        );
        // --resume without a checkpoint directory is refused.
        let err = cmd_run(&[s("--resume"), s(graph.to_str().unwrap())]).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "unexpected error: {err}");
    }
}
